package compress

import (
	"encoding/binary"
	"fmt"
)

// LZSS is a from-scratch byte-oriented LZ77 codec using the LZ4 block
// format: a stream of sequences, each a token byte (high nibble = literal
// length, low nibble = match length − 4, value 15 extended by 255-run
// bytes), the literals, a two-byte little-endian match offset, and any
// extended match length. The final sequence carries only literals.
//
// The compressor uses a 4-byte hash table over a 64 KiB window with greedy
// matching — the same design point as the fast codecs the paper evaluated
// (LZO/Snappy/LZ4): speed over ratio, good enough for highly repetitive
// trace buffers.
type LZSS struct{}

// Name implements Codec.
func (LZSS) Name() string { return "lzss" }

// ID implements Codec.
func (LZSS) ID() byte { return IDLZSS }

const (
	lzMinMatch  = 4
	lzWindow    = 1 << 16
	lzHashBits  = 14
	lzHashSize  = 1 << lzHashBits
	lzLastBytes = 5 // spec: last 5 bytes are always literals
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

// Compress implements Codec.
func (LZSS) Compress(dst, src []byte) []byte {
	n := len(src)
	if n < lzMinMatch+lzLastBytes+4 {
		// Too short to find matches: emit one literal-only sequence.
		return lzEmit(dst, src, 0, 0)
	}
	var table [lzHashSize]int32 // position+1 of a recent occurrence, 0 = none
	litStart := 0
	i := 0
	limit := n - lzLastBytes - lzMinMatch
	for i <= limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := lzHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand >= lzWindow || binary.LittleEndian.Uint32(src[cand:]) != v {
			i++
			continue
		}
		// Extend the match forward; stop short of the tail literals.
		matchLen := lzMinMatch
		maxLen := n - lzLastBytes - i
		for matchLen < maxLen && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		dst = lzEmit(dst, src[litStart:i], i-cand, matchLen)
		i += matchLen
		litStart = i
	}
	// Final literal-only sequence.
	return lzEmit(dst, src[litStart:], 0, 0)
}

// lzEmit appends one sequence: literals then, if matchLen >= lzMinMatch, a
// match with the given backward offset. matchLen == 0 emits the terminal
// literal-only sequence.
func lzEmit(dst, lits []byte, offset, matchLen int) []byte {
	litLen := len(lits)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	ml := 0
	if matchLen > 0 {
		ml = matchLen - lzMinMatch
		if ml >= 15 {
			token |= 15
		} else {
			token |= byte(ml)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lzExtend(dst, litLen-15)
	}
	dst = append(dst, lits...)
	if matchLen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml >= 15 {
			dst = lzExtend(dst, ml-15)
		}
	}
	return dst
}

func lzExtend(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// Decompress implements Codec.
func (LZSS) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	start := len(dst)
	want := start + rawLen
	pos := 0
	for pos < len(src) {
		token := src[pos]
		pos++
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, pos, err = lzReadExtend(src, pos, litLen)
			if err != nil {
				return nil, err
			}
		}
		if pos+litLen > len(src) {
			return nil, fmt.Errorf("compress: lzss literal run of %d overflows input", litLen)
		}
		dst = append(dst, src[pos:pos+litLen]...)
		pos += litLen
		if pos == len(src) {
			break // terminal sequence has no match part
		}
		if pos+2 > len(src) {
			return nil, fmt.Errorf("compress: lzss truncated match offset")
		}
		offset := int(src[pos]) | int(src[pos+1])<<8
		pos += 2
		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			matchLen, pos, err = lzReadExtend(src, pos, matchLen)
			if err != nil {
				return nil, err
			}
		}
		matchLen += lzMinMatch
		ref := len(dst) - offset
		if offset == 0 || ref < start {
			return nil, fmt.Errorf("compress: lzss match offset %d out of range", offset)
		}
		if len(dst)+matchLen > want {
			return nil, fmt.Errorf("compress: lzss output overruns declared length %d", rawLen)
		}
		// Byte-by-byte copy: matches may overlap their own output
		// (run-length encoding with offset < length).
		for k := 0; k < matchLen; k++ {
			dst = append(dst, dst[ref+k])
		}
	}
	if len(dst) != want {
		return nil, fmt.Errorf("compress: lzss produced %d bytes, want %d", len(dst)-start, rawLen)
	}
	return dst, nil
}

func lzReadExtend(src []byte, pos, base int) (int, int, error) {
	v := base
	for {
		if pos >= len(src) {
			return 0, 0, fmt.Errorf("compress: lzss truncated length extension")
		}
		b := src[pos]
		pos++
		v += int(b)
		if b != 255 {
			return v, pos, nil
		}
	}
}
