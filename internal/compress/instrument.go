package compress

import (
	"time"

	"sword/internal/obs"
)

// instrumented wraps a codec and records per-codec ratio and throughput
// into an obs registry — the paper's codec bake-off (LZO vs Snappy vs LZ4)
// as live counters instead of a one-off bench. Metric names are namespaced
// by codec: compress.<name>.{raw_bytes,compressed_bytes,blocks,compress,
// decompress}.
type instrumented struct {
	Codec
	rawBytes  *obs.Counter
	compBytes *obs.Counter
	blocks    *obs.Counter
	compTime  *obs.Timer
	decTime   *obs.Timer
}

// Instrument returns c with its Compress/Decompress paths recording into
// m. A nil registry (or nil codec) returns c unchanged; block-header
// identity (Name, ID) is forwarded so instrumented and plain logs are
// byte-identical.
func Instrument(c Codec, m *obs.Metrics) Codec {
	if m == nil || c == nil {
		return c
	}
	prefix := "compress." + c.Name() + "."
	return &instrumented{
		Codec:     c,
		rawBytes:  m.Counter(prefix + "raw_bytes"),
		compBytes: m.Counter(prefix + "compressed_bytes"),
		blocks:    m.Counter(prefix + "blocks"),
		compTime:  m.Timer(prefix + "compress"),
		decTime:   m.Timer(prefix + "decompress"),
	}
}

// Compress implements Codec.
func (i *instrumented) Compress(dst, src []byte) []byte {
	start := time.Now()
	out := i.Codec.Compress(dst, src)
	i.compTime.Observe(time.Since(start))
	i.blocks.Inc()
	i.rawBytes.Add(uint64(len(src)))
	i.compBytes.Add(uint64(len(out) - len(dst)))
	return out
}

// Decompress implements Codec.
func (i *instrumented) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	start := time.Now()
	out, err := i.Codec.Decompress(dst, src, rawLen)
	i.decTime.Observe(time.Since(start))
	return out, err
}
