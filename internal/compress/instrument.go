package compress

import (
	"sync/atomic"
	"time"

	"sword/internal/obs"
)

// instrumented wraps a codec and records per-codec ratio, throughput and
// saturation into an obs registry — the paper's codec bake-off (LZO vs
// Snappy vs LZ4) as live counters instead of a one-off bench. Metric names
// are namespaced by codec: compress.<name>.{raw_bytes,compressed_bytes,
// blocks,compress,decompress,inflight_peak}.
type instrumented struct {
	Codec
	rawBytes  *obs.Counter
	compBytes *obs.Counter
	blocks    *obs.Counter
	compTime  *obs.Timer
	decTime   *obs.Timer
	// inflight tracks concurrent Compress calls; its high-water mark is
	// the codec's saturation under the parallel flush pipeline (how many
	// flush workers actually compressed at once).
	inflight     atomic.Int64
	inflightPeak *obs.Gauge
}

// Instrument returns c with its Compress/Decompress paths recording into
// m. A nil registry (or nil codec) returns c unchanged; block-header
// identity (Name, ID) is forwarded so instrumented and plain logs are
// byte-identical.
func Instrument(c Codec, m *obs.Metrics) Codec {
	if m == nil || c == nil {
		return c
	}
	prefix := "compress." + c.Name() + "."
	return &instrumented{
		Codec:        c,
		rawBytes:     m.Counter(prefix + "raw_bytes"),
		compBytes:    m.Counter(prefix + "compressed_bytes"),
		blocks:       m.Counter(prefix + "blocks"),
		compTime:     m.Timer(prefix + "compress"),
		decTime:      m.Timer(prefix + "decompress"),
		inflightPeak: m.Gauge(prefix + "inflight_peak"),
	}
}

// Compress implements Codec.
func (i *instrumented) Compress(dst, src []byte) []byte {
	i.inflightPeak.SetMax(i.inflight.Add(1))
	start := time.Now()
	out := i.Codec.Compress(dst, src)
	i.compTime.Observe(time.Since(start))
	i.inflight.Add(-1)
	i.blocks.Inc()
	i.rawBytes.Add(uint64(len(src)))
	i.compBytes.Add(uint64(len(out) - len(dst)))
	return out
}

// Decompress implements Codec.
func (i *instrumented) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	start := time.Now()
	out, err := i.Codec.Decompress(dst, src, rawLen)
	i.decTime.Observe(time.Since(start))
	return out, err
}
