// Package compress provides the pluggable block codecs SWORD uses when
// flushing trace buffers to log files. The paper compared LZO, Snappy and
// LZ4 and found similar performance, picking LZO for ease of integration;
// this reproduction supplies, in the same spirit, a from-scratch
// byte-oriented LZ77 codec in the LZ4 block format ("lzss"), a
// compress/flate wrapper ("flate"), and an identity codec ("raw"). The
// codec comparison ablation bench mirrors the paper's codec bake-off.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Codec compresses and decompresses whole blocks. Implementations must be
// safe for concurrent use: the collector flushes per-thread buffers from
// independent goroutines through a single shared codec.
type Codec interface {
	// Name returns the codec's registry name.
	Name() string
	// ID returns the codec's stable one-byte identifier stored in block
	// headers.
	ID() byte
	// Compress appends the compressed form of src to dst and returns the
	// extended slice.
	Compress(dst, src []byte) []byte
	// Decompress appends the decompressed form of src to dst, which must
	// grow by exactly rawLen bytes, and returns the extended slice.
	Decompress(dst, src []byte, rawLen int) ([]byte, error)
}

// Codec identifiers stored in block headers.
const (
	IDRaw  byte = 0
	IDLZSS byte = 1
	IDZip  byte = 2
)

// ByID returns the codec with the given block-header identifier.
func ByID(id byte) (Codec, error) {
	switch id {
	case IDRaw:
		return Raw{}, nil
	case IDLZSS:
		return LZSS{}, nil
	case IDZip:
		return NewFlate(), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec id %d", id)
	}
}

// ByName returns the codec registered under name ("raw", "lzss", "flate").
func ByName(name string) (Codec, error) {
	switch name {
	case "raw":
		return Raw{}, nil
	case "lzss":
		return LZSS{}, nil
	case "flate":
		return NewFlate(), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// Raw is the identity codec.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// ID implements Codec.
func (Raw) ID() byte { return IDRaw }

// Compress implements Codec.
func (Raw) Compress(dst, src []byte) []byte { return append(dst, src...) }

// Decompress implements Codec.
func (Raw) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	if len(src) != rawLen {
		return nil, fmt.Errorf("compress: raw block length %d, want %d", len(src), rawLen)
	}
	return append(dst, src...), nil
}

// Flate wraps compress/flate at a fast level. Writers and staging buffers
// are pooled so the flush path stays allocation-free at steady state;
// readers are created per call.
type Flate struct {
	writers *sync.Pool
	bufs    *sync.Pool
}

// NewFlate returns a flate codec at compression level 1 (fastest), the
// right trade-off for a hot flush path.
func NewFlate() *Flate {
	return &Flate{
		writers: &sync.Pool{New: func() any {
			w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
			if err != nil {
				panic(err) // only fails for invalid levels
			}
			return w
		}},
		bufs: &sync.Pool{New: func() any { return new(bytes.Buffer) }},
	}
}

// Name implements Codec.
func (*Flate) Name() string { return "flate" }

// ID implements Codec.
func (*Flate) ID() byte { return IDZip }

// Compress implements Codec. The flate writer cannot emit straight into
// dst (it needs an io.Writer and flushes in chunks), so the output is
// staged through a pooled buffer whose capacity survives across calls —
// no per-call allocation once the pools are warm.
func (f *Flate) Compress(dst, src []byte) []byte {
	buf := f.bufs.Get().(*bytes.Buffer)
	buf.Reset()
	w := f.writers.Get().(*flate.Writer)
	w.Reset(buf)
	if _, err := w.Write(src); err != nil {
		panic(fmt.Sprintf("compress: flate write to buffer failed: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("compress: flate close failed: %v", err))
	}
	f.writers.Put(w)
	dst = append(dst, buf.Bytes()...)
	f.bufs.Put(buf)
	return dst
}

// Decompress implements Codec.
func (f *Flate) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	start := len(dst)
	dst = append(dst, make([]byte, rawLen)...)
	if _, err := io.ReadFull(r, dst[start:]); err != nil {
		return nil, fmt.Errorf("compress: flate decompress: %w", err)
	}
	return dst, nil
}
