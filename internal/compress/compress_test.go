package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func codecs() []Codec {
	return []Codec{Raw{}, LZSS{}, NewFlate()}
}

func roundTrip(t *testing.T, c Codec, src []byte) {
	t.Helper()
	comp := c.Compress(nil, src)
	got, err := c.Decompress(nil, comp, len(src))
	if err != nil {
		t.Fatalf("%s: Decompress: %v", c.Name(), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s: round trip mismatch: %d bytes in, %d out", c.Name(), len(src), len(got))
	}
}

func TestRoundTripBasic(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abcd"),
		[]byte("hello hello hello hello hello"),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("abc"), 5000),
		[]byte("no repeats 0123456789!@#$%^&*"),
	}
	for _, c := range codecs() {
		for _, in := range inputs {
			roundTrip(t, c, in)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, c := range codecs() {
		for trial := 0; trial < 50; trial++ {
			n := r.Intn(8192)
			src := make([]byte, n)
			// Mix of random and repetitive content.
			alphabet := 1 + r.Intn(255)
			for i := range src {
				src[i] = byte(r.Intn(alphabet))
			}
			roundTrip(t, c, src)
		}
	}
}

// TestRoundTripTraceLike feeds the codecs varint-dense data shaped like
// encoded trace buffers (small deltas, repeated pc ids).
func TestRoundTripTraceLike(t *testing.T) {
	var src []byte
	for i := 0; i < 25000; i++ {
		src = append(src, 0x9c, byte(16), byte(i%3+1))
	}
	for _, c := range codecs() {
		comp := c.Compress(nil, src)
		if c.Name() != "raw" && len(comp) >= len(src) {
			t.Errorf("%s: no compression on repetitive input: %d -> %d", c.Name(), len(src), len(comp))
		}
		roundTrip(t, c, src)
	}
}

func TestRoundTripAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	src := bytes.Repeat([]byte("xyz"), 100)
	for _, c := range codecs() {
		comp := c.Compress(append([]byte(nil), prefix...), src)
		if !bytes.HasPrefix(comp, prefix) {
			t.Fatalf("%s: Compress clobbered dst prefix", c.Name())
		}
		out, err := c.Decompress(append([]byte(nil), prefix...), comp[len(prefix):], len(src))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(out, append(append([]byte(nil), prefix...), src...)) {
			t.Fatalf("%s: Decompress did not append to dst", c.Name())
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		c := c
		f := func(src []byte) bool {
			comp := c.Compress(nil, src)
			got, err := c.Decompress(nil, comp, len(src))
			return err == nil && bytes.Equal(got, src)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestLZSSRejectsCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 64)
	comp := LZSS{}.Compress(nil, src)
	// Wrong declared length.
	if _, err := (LZSS{}).Decompress(nil, comp, len(src)+1); err == nil {
		t.Error("wrong rawLen accepted")
	}
	// Truncations at every prefix must error or produce wrong-length output,
	// never panic.
	for cut := 0; cut < len(comp); cut++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on truncated input at %d: %v", cut, p)
				}
			}()
			out, err := (LZSS{}).Decompress(nil, comp[:cut], len(src))
			if err == nil && bytes.Equal(out, src) {
				t.Errorf("truncated input at %d decoded successfully", cut)
			}
		}()
	}
	// Corrupt offsets must be rejected, not read out of bounds.
	bad := append([]byte(nil), comp...)
	for i := range bad {
		bad[i] ^= 0xff
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on corrupt byte %d: %v", i, p)
				}
			}()
			_, _ = (LZSS{}).Decompress(nil, bad, len(src))
		}()
		bad[i] ^= 0xff
	}
}

func TestByIDAndName(t *testing.T) {
	for _, c := range codecs() {
		got, err := ByID(c.ID())
		if err != nil || got.Name() != c.Name() {
			t.Errorf("ByID(%d) = %v, %v", c.ID(), got, err)
		}
		got, err = ByName(c.Name())
		if err != nil || got.ID() != c.ID() {
			t.Errorf("ByName(%s) = %v, %v", c.Name(), got, err)
		}
	}
	if _, err := ByID(99); err == nil {
		t.Error("ByID(99) succeeded")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestFlateConcurrent(t *testing.T) {
	c := NewFlate()
	src := bytes.Repeat([]byte("concurrent flate "), 200)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				comp := c.Compress(nil, src)
				got, err := c.Decompress(nil, comp, len(src))
				if err != nil || !bytes.Equal(got, src) {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func benchData() []byte {
	// Trace-like: repetitive tags, small varint deltas.
	var src []byte
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 25000; i++ {
		src = append(src, 0x9c, byte(8+r.Intn(3)), byte(r.Intn(5)+1))
	}
	return src
}

func BenchmarkCompress(b *testing.B) {
	src := benchData()
	for _, c := range codecs() {
		b.Run(c.Name(), func(b *testing.B) {
			var dst []byte
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = c.Compress(dst[:0], src)
			}
			b.ReportMetric(float64(len(src))/float64(len(dst)), "ratio")
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := benchData()
	for _, c := range codecs() {
		b.Run(c.Name(), func(b *testing.B) {
			comp := c.Compress(nil, src)
			var dst []byte
			var err error
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst, err = c.Decompress(dst[:0], comp, len(src))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCompressSteadyStateAllocs pins the flush path's allocation behavior:
// with a capacity-sized dst and warm pools, Compress must not allocate —
// the collector calls it once per buffer fill, on every thread.
func TestCompressSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; steady-state allocs are meaningless")
	}
	src := benchData()
	for _, c := range codecs() {
		dst := c.Compress(nil, src)
		for i := 0; i < 4; i++ { // warm the writer/buffer pools
			dst = c.Compress(dst[:0], src)
		}
		allocs := testing.AllocsPerRun(50, func() {
			dst = c.Compress(dst[:0], src)
		})
		if allocs > 0.5 {
			t.Errorf("%s: Compress allocates %.1f times per op at steady state, want 0", c.Name(), allocs)
		}
	}
}
