package dist

import (
	"fmt"
	"time"

	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/obs"
)

// Config is the merged distribution configuration: one struct carries the
// coordinator's scheduling knobs, the worker's analysis knobs, and the
// wire settings both ends negotiate. The zero value is ready to use —
// adaptive batch sizing, one prefetched batch per worker, lzss-compressed
// frames, a 256 MiB resident-tree budget — and the functional options
// below are the primary way to deviate from it, mirroring the public
// package's options.go idiom.
//
// The legacy CoordinatorConfig/WorkerConfig structs remain supported as
// an escape hatch through WithCoordinatorConfig and WithWorkerConfig.
type Config struct {
	// Core configures planning and analysis. It must match across the
	// coordinator and every worker: NoSolver/AllRaces/NoCompact change
	// what a batch reports.
	Core core.Config
	// BatchUnits is how many pair units one batch carries. 0 (the
	// default) sizes batches adaptively from the plan's byte-volume cost
	// model: tiny plans collapse into a single batch so dispatch overhead
	// cannot drown the work, large plans split into enough batches to
	// spread and pipeline.
	BatchUnits int
	// Prefetch is how many batches the coordinator keeps queued at a
	// worker beyond the one it is analyzing, so the worker never idles on
	// a dispatch round trip (default 1; negative disables prefetching).
	Prefetch int
	// WorkerTimeout is the liveness bound: a worker that sends no frame
	// (result or heartbeat) for this long is considered dead and its
	// outstanding batches are requeued (default 10s).
	WorkerTimeout time.Duration
	// BatchTimeout is the per-batch deadline, heartbeats or not: a batch
	// outstanding longer than this drops its worker — the slow-worker
	// guard (default 2m).
	BatchTimeout time.Duration
	// MaxAttempts bounds how often one unit may be dispatched before the
	// coordinator declares the run failed (default 5).
	MaxAttempts int
	// RetryBackoff is the base requeue delay; attempt k waits
	// RetryBackoff·2^(k-1) before redispatch (default 250ms).
	RetryBackoff time.Duration
	// WireCodec names the frame compressor offered during the handshake:
	// "lzss" (default), "flate", or "raw". Batch and result payloads are
	// compressed with the negotiated codec; a peer that offers nothing
	// (an older build) falls back to raw frames, so mixed versions
	// interoperate.
	WireCodec string
	// ResidentBudget bounds the trace volume (bytes) whose interval trees
	// a worker keeps resident across batches instead of freeing them per
	// batch. 0 means the 256 MiB default; negative disables residency
	// (every batch frees its trees, the pre-pipelining behavior). See
	// core.Config.ResidentBudget.
	ResidentBudget int64
	// InlineBelow is Local's cost-model cutoff: when the plan's total
	// trace volume is below this many bytes, Local analyzes in-process
	// instead of spinning up loopback workers — the wire cannot pay for
	// itself on a plan that small. 0 means the 256 KiB default; negative
	// means never inline. On a single-CPU host the cutoff rises to the
	// resident budget: loopback workers add no parallelism there, so only
	// memory boundedness can justify the protocol cost.
	InlineBelow int64
	// Name labels the worker in the coordinator's notes (default "").
	Name string
	// HeartbeatEvery is how often a worker pings the coordinator while a
	// batch runs (default 1s, or a third of WorkerTimeout when that is
	// shorter). It must stay strictly under WorkerTimeout — a worker that
	// pings slower than the coordinator's patience is indistinguishable
	// from a dead one — and newConfig validation rejects explicit values
	// that violate that.
	HeartbeatEvery time.Duration
	// DialRetries is how many times Work re-attempts the coordinator
	// connection after a dial failure or a torn session before giving up
	// (default 0: dial exactly once, the pre-reconnect behavior). With
	// retries enabled a worker started before its coordinator waits for it
	// to come up, and a worker surviving a coordinator restart rejoins the
	// new incarnation instead of dying. The retry budget resets after
	// every completed handshake, so a long-lived worker always has the
	// full budget against the next outage. Failures retrying cannot fix —
	// a protocol version mismatch, a bad codec pick, a fault-injection
	// hook death — are never retried.
	DialRetries int
	// DialBackoff is the base delay between connection attempts: attempt
	// k waits about DialBackoff·2^(k-1), jittered ±50% so a worker fleet
	// restarting together does not reconnect in lockstep (default 250ms).
	DialBackoff time.Duration
	// Obs receives the dist.* metrics (see docs/FORMAT.md). nil disables.
	Obs *obs.Metrics
	// BatchHook, when non-nil, runs before each batch's analysis on a
	// worker. A returned error makes the worker die on the spot —
	// connection torn, queued prefetched batches abandoned, no result
	// sent — which is exactly the fault the coordinator's requeue logic
	// exists for; the fault-injection tests and the chaos harness use it.
	BatchHook func(seq uint64, units []core.PairUnit) error
}

// Option configures NewCoordinator, Work, or Local.
type Option func(*Config)

// newConfig resolves an option list into a filled, validated Config.
// Misconfiguration is a loud error here — at ServeCoordinator/JoinWorker
// time — not a silent rewrite to defaults: a negative timeout or a
// heartbeat slower than the liveness bound is a caller bug that would
// otherwise surface as a mysterious stall or storm of requeues.
func newConfig(opts []Option) (Config, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// fill resolves zero fields to their documented defaults. Only exact
// zeros are rewritten: negative values survive into validate, where they
// fail loudly instead of being silently corrected. (Prefetch and the
// byte budgets are the exceptions — their negative forms are documented
// sentinels, not mistakes.)
func (cfg *Config) fill() {
	if cfg.WorkerTimeout == 0 {
		cfg.WorkerTimeout = 10 * time.Second
	}
	if cfg.BatchTimeout == 0 {
		cfg.BatchTimeout = 2 * time.Minute
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	// The default heartbeat tracks the liveness bound: a caller who only
	// tightens WorkerTimeout should not have to retune the ping rate too.
	// Explicit conflicting values still fail validation.
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = time.Second
		if hb := cfg.WorkerTimeout / 3; hb > 0 && hb < cfg.HeartbeatEvery {
			cfg.HeartbeatEvery = hb
		}
	}
	if cfg.DialBackoff == 0 {
		cfg.DialBackoff = 250 * time.Millisecond
	}
	if cfg.Prefetch == 0 {
		cfg.Prefetch = 1
	} else if cfg.Prefetch < 0 {
		cfg.Prefetch = 0
	}
	if cfg.WireCodec == "" {
		cfg.WireCodec = "lzss"
	}
	if cfg.InlineBelow == 0 {
		cfg.InlineBelow = 256 << 10
	}
	// The core layer owns tree residency; thread the dist-level knobs
	// through unless the caller already configured core explicitly.
	if cfg.Core.ResidentBudget == 0 {
		cfg.Core.ResidentBudget = cfg.ResidentBudget
	}
	if cfg.Core.Obs == nil {
		cfg.Core.Obs = cfg.Obs
	}
}

// validate rejects configurations that cannot work. It runs after fill,
// so every field it inspects is either caller-supplied or a known-good
// default.
func (cfg *Config) validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"WorkerTimeout", cfg.WorkerTimeout},
		{"BatchTimeout", cfg.BatchTimeout},
		{"RetryBackoff", cfg.RetryBackoff},
		{"HeartbeatEvery", cfg.HeartbeatEvery},
		{"DialBackoff", cfg.DialBackoff},
	} {
		if f.d < 0 {
			return fmt.Errorf("dist: %s must be positive, got %v", f.name, f.d)
		}
	}
	if cfg.MaxAttempts < 0 {
		return fmt.Errorf("dist: MaxAttempts must be positive, got %d", cfg.MaxAttempts)
	}
	if cfg.DialRetries < 0 {
		return fmt.Errorf("dist: DialRetries must be non-negative, got %d", cfg.DialRetries)
	}
	if cfg.HeartbeatEvery >= cfg.WorkerTimeout {
		return fmt.Errorf(
			"dist: HeartbeatEvery %v must stay under WorkerTimeout %v: a worker that pings slower than the coordinator's patience is indistinguishable from a dead one",
			cfg.HeartbeatEvery, cfg.WorkerTimeout)
	}
	if _, err := cfg.wireCodec(); err != nil {
		return err
	}
	return nil
}

// wireCodec resolves the configured codec name, treating "raw" as no
// compression at all (legacy frames).
func (cfg *Config) wireCodec() (compress.Codec, error) {
	if cfg.WireCodec == "raw" {
		return nil, nil
	}
	c, err := compress.ByName(cfg.WireCodec)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	return c, nil
}

// WithCore sets the analysis configuration shared by planning and
// workers.
func WithCore(c core.Config) Option {
	return func(cfg *Config) { cfg.Core = c }
}

// WithBatchUnits fixes the pair units per batch (0 = adaptive from the
// byte-volume cost model).
func WithBatchUnits(n int) Option {
	return func(cfg *Config) { cfg.BatchUnits = n }
}

// WithPrefetch sets how many batches stay queued at a worker beyond the
// active one (0 reverts to the default 1; negative disables prefetch).
func WithPrefetch(n int) Option {
	return func(cfg *Config) { cfg.Prefetch = n }
}

// WithWorkerTimeout sets the liveness bound for dropping a silent worker.
func WithWorkerTimeout(d time.Duration) Option {
	return func(cfg *Config) { cfg.WorkerTimeout = d }
}

// WithBatchTimeout sets the per-batch deadline (heartbeats or not).
func WithBatchTimeout(d time.Duration) Option {
	return func(cfg *Config) { cfg.BatchTimeout = d }
}

// WithMaxAttempts bounds dispatches per unit before the run fails.
func WithMaxAttempts(n int) Option {
	return func(cfg *Config) { cfg.MaxAttempts = n }
}

// WithRetryBackoff sets the base exponential requeue delay.
func WithRetryBackoff(d time.Duration) Option {
	return func(cfg *Config) { cfg.RetryBackoff = d }
}

// WithWireCodec selects the negotiated frame compressor: "lzss"
// (default), "flate", or "raw" for uncompressed legacy frames.
func WithWireCodec(name string) Option {
	return func(cfg *Config) { cfg.WireCodec = name }
}

// WithResidentBudget bounds the trace volume whose trees a worker keeps
// resident across batches (0 = 256 MiB default, negative disables).
func WithResidentBudget(bytes int64) Option {
	return func(cfg *Config) { cfg.ResidentBudget = bytes }
}

// WithInlineBelow sets Local's in-process cutoff: plans under this trace
// volume skip the loopback pool entirely (0 = 256 KiB default, negative
// = never inline — the differential tests force the wire this way).
func WithInlineBelow(bytes int64) Option {
	return func(cfg *Config) { cfg.InlineBelow = bytes }
}

// WithName labels the worker in the coordinator's notes.
func WithName(name string) Option {
	return func(cfg *Config) { cfg.Name = name }
}

// WithHeartbeatEvery sets the worker's heartbeat interval.
func WithHeartbeatEvery(d time.Duration) Option {
	return func(cfg *Config) { cfg.HeartbeatEvery = d }
}

// WithDialRetries sets how many times Work re-attempts the coordinator
// connection after a dial failure or torn session (0 = dial once).
func WithDialRetries(n int) Option {
	return func(cfg *Config) { cfg.DialRetries = n }
}

// WithDialBackoff sets the base jittered exponential delay between
// connection attempts.
func WithDialBackoff(d time.Duration) Option {
	return func(cfg *Config) { cfg.DialBackoff = d }
}

// WithObs records the dist.* metrics into m.
func WithObs(m *obs.Metrics) Option {
	return func(cfg *Config) { cfg.Obs = m }
}

// WithBatchHook installs the worker-side fault-injection hook.
func WithBatchHook(h func(seq uint64, units []core.PairUnit) error) Option {
	return func(cfg *Config) { cfg.BatchHook = h }
}

// CoordinatorConfig is the legacy positional form of the coordinator's
// knobs, kept as a compiling escape hatch; pass it through
// WithCoordinatorConfig. New code should use the functional options.
type CoordinatorConfig struct {
	Core          core.Config
	BatchUnits    int
	WorkerTimeout time.Duration
	BatchTimeout  time.Duration
	MaxAttempts   int
	RetryBackoff  time.Duration
	Obs           *obs.Metrics
}

// WorkerConfig is the legacy positional form of the worker's knobs, kept
// as a compiling escape hatch; pass it through WithWorkerConfig.
type WorkerConfig struct {
	Core           core.Config
	Name           string
	HeartbeatEvery time.Duration
	Obs            *obs.Metrics
	BatchHook      func(seq uint64, units []core.PairUnit) error
}

// WithCoordinatorConfig overlays a legacy CoordinatorConfig — the bridge
// from the struct form. Later options still apply on top. Zero fields
// keep their defaults.
func WithCoordinatorConfig(c CoordinatorConfig) Option {
	return func(cfg *Config) {
		cfg.Core = c.Core
		if c.BatchUnits != 0 {
			cfg.BatchUnits = c.BatchUnits
		}
		if c.WorkerTimeout != 0 {
			cfg.WorkerTimeout = c.WorkerTimeout
		}
		if c.BatchTimeout != 0 {
			cfg.BatchTimeout = c.BatchTimeout
		}
		if c.MaxAttempts != 0 {
			cfg.MaxAttempts = c.MaxAttempts
		}
		if c.RetryBackoff != 0 {
			cfg.RetryBackoff = c.RetryBackoff
		}
		if c.Obs != nil {
			cfg.Obs = c.Obs
		}
	}
}

// WithWorkerConfig overlays a legacy WorkerConfig, mirroring
// WithCoordinatorConfig.
func WithWorkerConfig(w WorkerConfig) Option {
	return func(cfg *Config) {
		cfg.Core = w.Core
		if w.Name != "" {
			cfg.Name = w.Name
		}
		if w.HeartbeatEvery != 0 {
			cfg.HeartbeatEvery = w.HeartbeatEvery
		}
		if w.Obs != nil {
			cfg.Obs = w.Obs
		}
		if w.BatchHook != nil {
			cfg.BatchHook = w.BatchHook
		}
	}
}
