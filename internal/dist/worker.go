package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/trace"
)

// WorkerConfig parameterizes one analysis worker.
type WorkerConfig struct {
	// Core configures the batch analyzer; Workers bounds the in-process
	// parallelism of tree building and pair comparison (non-positive =
	// GOMAXPROCS, see core.EffectiveWorkers).
	Core core.Config
	// Name labels the worker in the coordinator's notes (default "").
	Name string
	// HeartbeatEvery is how often the worker pings the coordinator while a
	// batch is running (default 1s; keep it well under the coordinator's
	// WorkerTimeout).
	HeartbeatEvery time.Duration
	// Obs receives the worker-side dist.* and core.* counters. nil
	// disables.
	Obs *obs.Metrics
	// BatchHook, when non-nil, runs before each batch's analysis. A
	// returned error makes the worker die on the spot — connection torn,
	// no result sent — which is exactly the fault the coordinator's
	// requeue logic exists for; the fault-injection tests and the chaos
	// harness use it. The trace.FaultStore counterpart injects faults
	// below the store API; this hook injects them at the work-unit layer.
	BatchHook func(seq uint64, units []core.PairUnit) error
}

func (cfg *WorkerConfig) fill() {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
}

// Work connects to the coordinator at addr, analyzes batches from the
// shared store until the coordinator says Shutdown, and returns nil on a
// clean drain. The store must hold the same trace the coordinator
// planned from — workers verify this implicitly: a UnitID that does not
// resolve fails the batch. ctx cancellation aborts the current batch and
// the connection.
func Work(ctx context.Context, addr string, store trace.Store, cfg WorkerConfig) error {
	cfg.fill()
	ba, err := core.NewBatchAnalyzer(store, cfg.Core)
	if err != nil {
		return err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled ctx unblocks any pending read/write by killing the
	// connection; the coordinator sees a dead worker and requeues.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	fr := newFramer(conn, cfg.Obs)
	if err := fr.send(msgHello, &Hello{Version: protoVersion, Name: cfg.Name}); err != nil {
		return ctxOr(ctx, err)
	}
	var welcome Welcome
	if err := fr.recvExpect(msgWelcome, &welcome); err != nil {
		return ctxOr(ctx, fmt.Errorf("dist: handshake: %w", err))
	}
	if welcome.Version != protoVersion {
		return fmt.Errorf("dist: coordinator speaks protocol %d, want %d", welcome.Version, protoVersion)
	}

	for {
		typ, payload, err := fr.recv()
		if err != nil {
			return ctxOr(ctx, fmt.Errorf("dist: await batch: %w", err))
		}
		switch typ {
		case msgShutdown:
			return nil
		case msgBatch:
			var batch Batch
			if err := decodePayload(typ, payload, &batch); err != nil {
				return err
			}
			if err := runBatch(ctx, fr, ba, &batch, cfg); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unexpected %s frame awaiting batch", typeName(typ))
		}
	}
}

// ctxOr prefers the context's error once it is done: a torn connection
// after cancellation is the cancellation, not a network failure.
func ctxOr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// errHookDeath marks a fault-injection kill: the worker must die with the
// connection torn and no result sent, unlike an ordinary batch failure.
type errHookDeath struct{ err error }

func (e errHookDeath) Error() string { return e.err.Error() }

// runBatch analyzes one batch under its deadline, heartbeating the whole
// time (the hook included — it models slow batch processing), and sends
// the result. Analysis errors that are the batch's fault (an
// unresolvable unit, the deadline) are reported in Result.Err; transport
// errors and hook-injected deaths propagate and kill the worker.
func runBatch(ctx context.Context, fr *framer, ba *core.BatchAnalyzer, batch *Batch, cfg WorkerConfig) error {
	bctx := ctx
	var cancel context.CancelFunc
	if batch.TimeLimit > 0 {
		bctx, cancel = context.WithTimeout(ctx, time.Duration(batch.TimeLimit))
		defer cancel()
	}

	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if err := fr.send(msgHeartbeat, nil); err != nil {
					return // connection gone; the analysis will find out too
				}
				cfg.Obs.Counter("dist.worker_heartbeats").Inc()
			}
		}
	}()
	var rep *report.Report
	err := func() error {
		if cfg.BatchHook != nil {
			if err := cfg.BatchHook(batch.Seq, batch.Units); err != nil {
				return errHookDeath{err}
			}
		}
		var aerr error
		rep, aerr = ba.AnalyzeUnits(bctx, batch.Units)
		return aerr
	}()
	close(hbStop)
	<-hbDone

	res := Result{Seq: batch.Seq}
	var death errHookDeath
	switch {
	case err == nil:
		res.Races = rep.Races()
		res.Stats = rep.Stats
		cfg.Obs.Counter("dist.worker_units_done").Add(uint64(len(batch.Units)))
		cfg.Obs.Counter("dist.worker_batches_done").Inc()
	case errors.As(err, &death):
		return fmt.Errorf("dist: batch hook: %w", death.err)
	case ctx.Err() != nil:
		return ctx.Err() // worker-level cancellation: die, do not report
	default:
		// Batch-level failure (deadline, bad unit): tell the coordinator
		// so it can requeue without waiting for the liveness timeout.
		res.Err = err.Error()
		cfg.Obs.Counter("dist.worker_batches_failed").Inc()
	}
	return fr.send(msgResult, &res)
}

// Local runs a coordinator plus n in-process loopback workers over store
// and returns the merged report — the `sworddist -local N` mode, the
// smoke test, and the harness's distributed lane. Worker failures are
// tolerated (that is the point of the subsystem); only a failed plan or a
// failed run is an error.
func Local(ctx context.Context, store trace.Store, n int, ccfg CoordinatorConfig, wcfg WorkerConfig) (*report.Report, error) {
	if n <= 0 {
		n = 2
	}
	coord, err := NewCoordinator(store, ccfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ln) }()
	addr := ln.Addr().String()
	for i := 0; i < n; i++ {
		cfg := wcfg
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("local-%d", i+1)
		}
		go func() {
			// Errors are visible to the coordinator as a dead worker; the
			// remaining workers absorb the requeued units.
			_ = Work(ctx, addr, store, cfg)
		}()
	}
	done := make(chan struct{})
	var rep *report.Report
	var waitErr error
	go func() {
		rep, waitErr = coord.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-done:
	}
	if waitErr != nil {
		return nil, waitErr
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	return rep, nil
}
