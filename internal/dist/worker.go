package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"runtime"
	"time"

	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/report"
	"sword/internal/trace"
)

// Work connects to the coordinator at addr, analyzes batches from the
// shared store until the coordinator says Shutdown, and returns nil on a
// clean drain. The store must hold the same trace the coordinator
// planned from — workers verify this implicitly: a UnitID that does not
// resolve fails the batch. ctx cancellation aborts the current batch and
// the connection.
//
// Batches are pipelined: a reader goroutine queues incoming batches while
// the analysis loop streams each completed batch's result back on the
// same connection, so the next batch is already local when the current
// one finishes — no dispatch round trip between batches. Interval trees
// built for one batch stay resident (up to the configured budget) for the
// next; see core.Config.ResidentBudget.
//
// With WithDialRetries set, a failed dial or a torn session is retried
// under jittered exponential backoff (WithDialBackoff), so a worker
// started before its coordinator waits for it to come up, and a worker
// surviving a coordinator restart rejoins the new incarnation. The
// analyzer — resident trees included — is built once and survives
// reconnects. The retry budget resets after every completed handshake.
// Cancellation, protocol version mismatches, codec rejections, and
// fault-injection hook deaths are never retried.
func Work(ctx context.Context, addr string, store trace.Store, opts ...Option) error {
	cfg, err := newConfig(opts)
	if err != nil {
		return err
	}
	planStart := time.Now()
	ba, err := core.NewBatchAnalyzer(store, cfg.Core)
	if err != nil {
		return err
	}
	cfg.Obs.Timer("dist.worker_plan").Observe(time.Since(planStart))
	attempt := 0
	for {
		welcomed, err := workSession(ctx, addr, ba, cfg)
		if err == nil || ctx.Err() != nil {
			return err
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return perm.err
		}
		if welcomed {
			attempt = 0 // a completed handshake refills the retry budget
		}
		if attempt >= cfg.DialRetries {
			return err
		}
		attempt++
		cfg.Obs.Counter("dist.worker_reconnects").Inc()
		if err := sleepBackoff(ctx, cfg.DialBackoff, attempt); err != nil {
			return err
		}
	}
}

// errPermanent marks worker failures reconnecting cannot fix; Work's
// retry loop gives up on them immediately.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// sleepBackoff waits out attempt k's jittered delay — about
// base·2^(k-1), uniformly spread over [50%, 150%] so a fleet restarting
// together does not reconnect in lockstep — or returns early on
// cancellation.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) error {
	d := base << min(attempt-1, 16)
	d = d/2 + rand.N(d+1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// workSession runs one connection lifetime: dial, handshake, analyze
// until shutdown or failure. welcomed reports whether the handshake
// completed, which Work uses to reset the reconnect budget.
func workSession(ctx context.Context, addr string, ba *core.BatchAnalyzer, cfg Config) (welcomed bool, _ error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return false, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled ctx unblocks any pending read/write by killing the
	// connection; the coordinator sees a dead worker and requeues.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	fr := newFramer(conn, cfg.Obs)
	var offer []string
	if cfg.WireCodec != "raw" {
		offer = []string{cfg.WireCodec}
	}
	if err := fr.send(msgHello, &Hello{Version: protoVersion, Name: cfg.Name, Codecs: offer}); err != nil {
		return false, ctxOr(ctx, err)
	}
	var welcome Welcome
	if err := fr.recvExpect(msgWelcome, &welcome); err != nil {
		return false, ctxOr(ctx, fmt.Errorf("dist: handshake: %w", err))
	}
	if welcome.Version != protoVersion {
		return false, errPermanent{fmt.Errorf("dist: coordinator speaks protocol %d, want %d", welcome.Version, protoVersion)}
	}
	if welcome.Codec != "" {
		offered := false
		for _, n := range offer {
			offered = offered || n == welcome.Codec
		}
		if !offered {
			return false, errPermanent{fmt.Errorf("dist: coordinator picked codec %q, which this worker never offered", welcome.Codec)}
		}
		cd, err := compress.ByName(welcome.Codec)
		if err != nil {
			return false, errPermanent{fmt.Errorf("dist: %w", err)}
		}
		fr.setCodec(cd)
	}

	// Reader: queue batches as they stream in so the analysis loop never
	// waits on the wire. The coordinator bounds the queue by its prefetch
	// window; the channel capacity is just headroom.
	batches := make(chan *Batch, 16)
	readErr := make(chan error, 1)
	go func() {
		defer close(batches)
		for {
			typ, payload, err := fr.recv()
			if err != nil {
				readErr <- fmt.Errorf("dist: await batch: %w", err)
				return
			}
			switch typ {
			case msgShutdown:
				readErr <- nil
				return
			case msgBatch:
				var batch Batch
				if err := decodePayload(typ, payload, &batch); err != nil {
					readErr <- err
					return
				}
				batches <- &batch
			default:
				readErr <- fmt.Errorf("dist: unexpected %s frame awaiting batch", typeName(typ))
				return
			}
		}
	}()
	for batch := range batches {
		if err := runBatch(ctx, fr, ba, batch, cfg); err != nil {
			return true, err // conn closes via defer; the reader unblocks and exits
		}
	}
	if err := <-readErr; err != nil {
		return true, ctxOr(ctx, err)
	}
	return true, nil
}

// ctxOr prefers the context's error once it is done: a torn connection
// after cancellation is the cancellation, not a network failure.
func ctxOr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// errHookDeath marks a fault-injection kill: the worker must die with the
// connection torn and no result sent, unlike an ordinary batch failure.
type errHookDeath struct{ err error }

func (e errHookDeath) Error() string { return e.err.Error() }

// runBatch analyzes one batch under its deadline, heartbeating the whole
// time (the hook included — it models slow batch processing), and streams
// the result. Analysis errors that are the batch's fault (an
// unresolvable unit, the deadline) are reported in Result.Err; transport
// errors and hook-injected deaths propagate and kill the worker.
func runBatch(ctx context.Context, fr *framer, ba *core.BatchAnalyzer, batch *Batch, cfg Config) error {
	bctx := ctx
	var cancel context.CancelFunc
	if batch.TimeLimit > 0 {
		bctx, cancel = context.WithTimeout(ctx, time.Duration(batch.TimeLimit))
		defer cancel()
	}

	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if err := fr.send(msgHeartbeat, nil); err != nil {
					return // connection gone; the analysis will find out too
				}
				cfg.Obs.Counter("dist.worker_heartbeats").Inc()
			}
		}
	}()
	var rep *report.Report
	busyStart := time.Now()
	err := func() error {
		if cfg.BatchHook != nil {
			if err := cfg.BatchHook(batch.Seq, batch.Units); err != nil {
				return errHookDeath{err}
			}
		}
		var aerr error
		rep, aerr = ba.AnalyzeUnits(bctx, batch.Units)
		return aerr
	}()
	busy := time.Since(busyStart)
	close(hbStop)
	<-hbDone

	res := Result{Seq: batch.Seq, BusyNs: int64(busy)}
	var death errHookDeath
	switch {
	case err == nil:
		res.Races = rep.Races()
		res.Stats = rep.Stats
		cfg.Obs.Counter("dist.worker_units_done").Add(uint64(len(batch.Units)))
		cfg.Obs.Counter("dist.worker_batches_done").Inc()
		cfg.Obs.Timer("dist.worker_busy").Observe(busy)
	case errors.As(err, &death):
		// Fault injection models a crashed worker; reconnecting would
		// defeat the test, so the death is permanent.
		return errPermanent{fmt.Errorf("dist: batch hook: %w", death.err)}
	case ctx.Err() != nil:
		return ctx.Err() // worker-level cancellation: die, do not report
	default:
		// Batch-level failure (deadline, bad unit): tell the coordinator
		// so it can requeue without waiting for the liveness timeout.
		res.Err = err.Error()
		cfg.Obs.Counter("dist.worker_batches_failed").Inc()
	}
	return fr.send(msgResult, &res)
}

// inlineCutoff is the plan volume below which Local analyzes in-process.
// On a single-CPU host the cutoff rises to the resident budget: loopback
// workers cannot add parallelism there, so only memory boundedness — a
// plan the budget will not hold resident — justifies the protocol cost.
func inlineCutoff(cfg *Config) int64 {
	if cfg.InlineBelow < 0 {
		return 0
	}
	cut := cfg.InlineBelow
	if runtime.NumCPU() == 1 {
		budget := cfg.ResidentBudget
		if budget == 0 {
			budget = 256 << 20 // core's residentDefault
		}
		if budget > cut {
			cut = budget
		}
	}
	return cut
}

// Local runs the distributed analysis over store in one process and
// returns the merged report — the `sworddist -local N` mode, the smoke
// test, and the harness's distributed lane.
//
// Local is adaptive: when the plan's trace volume falls below the inline
// cutoff (WithInlineBelow), the loopback pool cannot win — serialization,
// compression and scheduling would cost more than they spread — so the
// plan is analyzed directly on the coordinator's own BatchAnalyzer and
// the wire never comes up. Otherwise a coordinator plus n loopback TCP
// workers run the full pipelined protocol. Worker failures are tolerated
// (that is the point of the subsystem); only a failed plan or a failed
// run is an error.
func Local(ctx context.Context, store trace.Store, n int, opts ...Option) (*report.Report, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = 2
	}
	coord, err := newCoordinator(store, cfg)
	if err != nil {
		return nil, err
	}
	if coord.ba.Volume() < inlineCutoff(&cfg) {
		return coord.inline(ctx)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ln) }()
	addr := ln.Addr().String()
	for i := 0; i < n; i++ {
		wcfg := cfg
		if wcfg.Name == "" {
			wcfg.Name = fmt.Sprintf("local-%d", i+1)
		}
		go func() {
			// Errors are visible to the coordinator as a dead worker; the
			// remaining workers absorb the requeued units.
			_ = Work(ctx, addr, store, func(c *Config) { *c = wcfg })
		}()
	}
	done := make(chan struct{})
	var rep *report.Report
	var waitErr error
	go func() {
		rep, waitErr = coord.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-done:
	}
	if waitErr != nil {
		return nil, waitErr
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	return rep, nil
}

// inline analyzes the coordinator's whole plan in-process on its own
// BatchAnalyzer — same engine, same pairs, same report shape as the wire
// path, minus the wire.
func (c *Coordinator) inline(ctx context.Context) (*report.Report, error) {
	units := c.ba.Units()
	c.m.Counter("dist.inline_runs").Inc()
	if len(units) > 0 {
		rep, err := c.ba.AnalyzeUnits(ctx, units)
		if err != nil {
			return nil, err
		}
		for _, r := range rep.Races() {
			c.rep.Add(r)
		}
		c.rep.Stats.Merge(rep.Stats)
	}
	c.rep.Note("plan of %d byte(s) analyzed inline, below the %d-byte distribution cutoff", c.ba.Volume(), inlineCutoff(&c.cfg))
	c.finish()
	return c.rep, nil
}
