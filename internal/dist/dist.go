// Package dist shards SWORD's offline analysis across processes — the
// paper's cluster mode (§V analyzed pairs of concurrent barrier intervals
// across 616 nodes), reproduced as a coordinator/worker service over TCP.
//
// The coordinator reads only the meta files: it recovers the region
// structure, enumerates every concurrent pair of tree units
// (core.BatchAnalyzer), and serves group-affine, cost-descending batches
// of core.PairUnit to whoever connects — batches sized adaptively from
// the plan's byte volume. Workers open the same trace store read-only,
// resolve the unit ids against their own identically-recovered structure,
// build just the interval trees a batch references (block-skipping past
// the rest of the logs, and keeping built trees resident across batches
// up to a byte budget), run the regular sweep engine, and stream back the
// races plus that batch's effort delta. The coordinator merges results
// through report.Report's dedup and report.Stats.Merge, so the final
// report carries the same race set as a single-process run.
//
// The data plane is pipelined: the coordinator keeps 1+Prefetch batches
// outstanding per connection and the worker streams results back as each
// batch completes, so a worker moves straight to the already-queued next
// batch instead of idling on a dispatch round trip. Frames are compressed
// with a codec negotiated in the hello/welcome handshake (raw fallback
// keeps old and differently-configured peers interoperable), and
// dist.Local inlines plans too small for the wire to pay for itself.
//
// Configuration is functional options over one merged Config —
// WithPrefetch, WithWireCodec, WithResidentBudget, WithBatchTimeout, ...;
// the legacy CoordinatorConfig/WorkerConfig structs remain usable through
// WithCoordinatorConfig/WithWorkerConfig. The public package re-exports
// the entry points as sword.ServeCoordinator, sword.JoinWorker and
// sword.AnalyzeDistributed.
//
// Fault tolerance is the coordinator's requeue loop: a worker that stops
// sending frames (no result, no heartbeat) within WorkerTimeout, or whose
// batch overruns BatchTimeout, is dropped and its batch returns to the
// queue with exponential backoff; MaxAttempts bounds how often a unit may
// fail before the run is declared failed rather than silently incomplete.
// A dropped worker is never reused, which keeps race-site suppression
// sound: every result the coordinator accepted came from a batch that ran
// to completion, so a suppressed detection always has its confirming race
// in an accepted batch.
//
// The wire format, dist.* metrics, and failure semantics are documented
// in docs/FORMAT.md ("Distributed analysis"); cmd/sworddist is the CLI
// (-serve, -join, -local N).
package dist
