package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// collectWorkload runs a named example workload under the collector and
// returns its trace store.
func collectWorkload(t *testing.T, name string) trace.Store {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	w.Run(&workloads.Ctx{RT: rtm, Space: memsim.NewSpace(nil), Threads: 4, Size: w.DefaultSize})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return store
}

// raceKeys keys races the way report dedup does (unordered PC pair plus
// write bits); Count and witness Addr legitimately vary with scheduling.
func raceKeys(rep *report.Report) map[string]bool {
	out := make(map[string]bool)
	for _, r := range rep.Races() {
		a, b := r.First, r.Second
		if a.PC > b.PC || (a.PC == b.PC && a.Write && !b.Write) {
			a, b = b, a
		}
		out[fmt.Sprintf("%x|%x|%v|%v", a.PC, b.PC, a.Write, b.Write)] = true
	}
	return out
}

func wantSameRaces(t *testing.T, label string, got, want *report.Report) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d dedup'd races, want %d\ngot:\n%s\nwant:\n%s",
			label, got.Len(), want.Len(), got.String(), want.String())
	}
	gk, wk := raceKeys(got), raceKeys(want)
	for k := range wk {
		if !gk[k] {
			t.Fatalf("%s: missing race %s", label, k)
		}
	}
}

// distWorkloads are the differential workloads: racy OmpSCR kernel, racy
// DataRaceBench micro kernel, a race-free kernel, and a tasking program.
var distWorkloads = []string{"c_md", "plusplus-orig-yes", "critical-no", "tasksibling-orig-yes"}

// TestLocalMatchesSingleProcess is the acceptance differential: a
// coordinator plus N loopback workers must produce the race set and
// dedup'd race count of the single-process analyzer, on every example
// workload tried and for several worker counts and batch sizes.
func TestLocalMatchesSingleProcess(t *testing.T) {
	for _, name := range distWorkloads {
		t.Run(name, func(t *testing.T) {
			store := collectWorkload(t, name)
			base, err := core.New(store, core.Config{}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct{ workers, batch int }{{1, 4}, {2, 4}, {4, 1}, {3, 1000000}} {
				// The legacy struct configs must keep working through the
				// escape-hatch options; WithInlineBelow(-1) forces the wire,
				// which is what this differential exists to exercise.
				rep, err := Local(context.Background(), store, tc.workers,
					WithCoordinatorConfig(CoordinatorConfig{BatchUnits: tc.batch}),
					WithWorkerConfig(WorkerConfig{}),
					WithInlineBelow(-1))
				if err != nil {
					t.Fatalf("workers=%d batch=%d: %v", tc.workers, tc.batch, err)
				}
				wantSameRaces(t, fmt.Sprintf("workers=%d batch=%d", tc.workers, tc.batch), rep, base)
			}
		})
	}
}

// TestLocalMergedStats: structure counts come from the coordinator's own
// plan, effort counters from summed worker deltas — both must be sane and
// the structure counts identical to the single-process run.
func TestLocalMergedStats(t *testing.T) {
	store := collectWorkload(t, "c_md")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Local(context.Background(), store, 2, WithBatchUnits(8), WithInlineBelow(-1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Intervals != base.Stats.Intervals || rep.Stats.Regions != base.Stats.Regions {
		t.Errorf("structure stats %d/%d, want %d/%d",
			rep.Stats.Intervals, rep.Stats.Regions, base.Stats.Intervals, base.Stats.Regions)
	}
	if base.Stats.NodeComparisons > 0 && rep.Stats.NodeComparisons == 0 {
		t.Error("no node comparisons merged from workers")
	}
	if rep.Stats.IntervalPairs == 0 {
		t.Error("no interval pairs merged from workers")
	}
}

// TestWorkerDeathMidBatch is the fault-injection acceptance test: one
// worker dies mid-batch (connection torn, no result), the coordinator
// requeues its units onto the surviving worker, the final report is
// complete, and dist.units_retried records the retry.
func TestWorkerDeathMidBatch(t *testing.T) {
	store := collectWorkload(t, "c_md")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	var died atomic.Bool
	rep, err := Local(context.Background(), store, 2,
		WithBatchUnits(2),
		WithRetryBackoff(10*time.Millisecond),
		WithObs(m),
		WithInlineBelow(-1),
		WithBatchHook(func(seq uint64, units []core.PairUnit) error {
			if died.CompareAndSwap(false, true) {
				return errors.New("injected worker death")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	wantSameRaces(t, "after worker death", rep, base)
	snap := m.Snapshot()
	if v := snap.Value("dist.units_retried"); v <= 0 {
		t.Errorf("dist.units_retried = %d, want > 0", v)
	}
	if v := snap.Value("dist.workers_dropped"); v != 1 {
		t.Errorf("dist.workers_dropped = %d, want 1", v)
	}
	if v := snap.Value("dist.units_lost"); v != 0 {
		t.Errorf("dist.units_lost = %d, want 0", v)
	}
	var noted bool
	for _, n := range rep.Notes() {
		if strings.Contains(n, "requeued") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("no requeue note in the report; notes: %v", rep.Notes())
	}
}

// TestSlowWorkerDropped: a worker that heartbeats but overruns the batch
// deadline is dropped — heartbeats prove liveness, not progress — and its
// units complete elsewhere.
func TestSlowWorkerDropped(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	var slowed atomic.Bool
	rep, err := Local(context.Background(), store, 2,
		WithBatchUnits(2),
		WithBatchTimeout(200*time.Millisecond),
		WithWorkerTimeout(150*time.Millisecond),
		WithRetryBackoff(10*time.Millisecond),
		WithObs(m),
		WithInlineBelow(-1),
		WithHeartbeatEvery(20*time.Millisecond),
		WithBatchHook(func(seq uint64, units []core.PairUnit) error {
			if slowed.CompareAndSwap(false, true) {
				time.Sleep(600 * time.Millisecond) // heartbeats keep flowing
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	wantSameRaces(t, "after slow worker", rep, base)
	snap := m.Snapshot()
	if v := snap.Value("dist.units_retried"); v <= 0 {
		t.Errorf("dist.units_retried = %d, want > 0", v)
	}
	if v := snap.Value("dist.heartbeats"); v <= 0 {
		t.Errorf("dist.heartbeats = %d, want > 0 (slow batch should have heartbeat)", v)
	}
}

// TestUnitExhaustsAttempts: when every worker kills every batch, units run
// out of attempts and the run fails loudly instead of returning a
// silently incomplete report.
func TestUnitExhaustsAttempts(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	m := obs.New()
	// Workers die on every batch; respawn a fresh worker after each death
	// so the coordinator always has someone to hand work to.
	coord, err := NewCoordinator(store, WithCoordinatorConfig(CoordinatorConfig{
		BatchUnits:   4,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		Obs:          m,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			Work(context.Background(), ln.Addr().String(), store, WithWorkerConfig(WorkerConfig{
				BatchHook: func(uint64, []core.PairUnit) error { return errors.New("always dies") },
			}))
		}
	}()
	if _, err := coord.Wait(); err == nil {
		t.Fatal("run with only dying workers reported success")
	} else if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("unexpected failure: %v", err)
	}
	if v := m.Snapshot().Value("dist.units_lost"); v <= 0 {
		t.Errorf("dist.units_lost = %d, want > 0", v)
	}
}

// TestWorkerCancel: cancelling the worker's context mid-run makes Work
// return promptly with ctx.Err even while blocked on the network.
func TestWorkerCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // swallow the hello, never reply: worker blocks
		}
	}()
	store := collectWorkload(t, "critical-no")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Work(ctx, ln.Addr().String(), store) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Work returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Work did not return after cancellation")
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

// TestEmptyTrace: an empty store plans zero units; the coordinator
// finishes immediately and Local returns an empty report even though the
// workers never get to connect.
func TestEmptyTrace(t *testing.T) {
	store := trace.NewMemStore()
	rep, err := Local(context.Background(), store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatalf("empty trace produced %d races", rep.Len())
	}
}

// TestCoordinatorRejectsVersionMismatch: a worker speaking the wrong
// protocol version is turned away before any work flows.
func TestCoordinatorRejectsVersionMismatch(t *testing.T) {
	store := collectWorkload(t, "critical-no")
	coord, err := NewCoordinator(store, WithWorkerTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go coord.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := newFramer(conn, nil)
	if err := fr.send(msgHello, &Hello{Version: protoVersion + 1, Name: "future"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.recv(); err == nil {
		t.Fatal("coordinator answered a version-mismatched hello instead of closing")
	}
}
