package dist

import (
	"encoding/binary"
	"net"
	"testing"

	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/trace"
)

// pipePair returns two framers joined by an in-memory duplex connection.
func pipePair(m *obs.Metrics) (*framer, *framer) {
	a, b := net.Pipe()
	return newFramer(a, m), newFramer(b, m)
}

// TestFrameRoundTrip: every message type survives the frame encoding.
func TestFrameRoundTrip(t *testing.T) {
	m := obs.New()
	a, b := pipePair(m)
	defer a.conn.Close()
	defer b.conn.Close()

	batch := Batch{
		Seq: 7,
		Units: []core.PairUnit{{
			A:    core.UnitID{Key: trace.IntervalKey{PID: 1, TID: 2, BID: 3}, Unit: 1},
			B:    core.UnitID{Key: trace.IntervalKey{PID: 1, TID: 4, BID: 3}},
			Cost: 4096,
		}},
		TimeLimit: int64(1e9),
	}
	result := Result{
		Seq: 7,
		Races: []report.Race{{
			First:  report.Side{PC: 10, Source: "a.go:1", Write: true},
			Second: report.Side{PC: 20, Source: "b.go:2"},
			Addr:   0x1000, Count: 3,
		}},
		Stats: report.Stats{IntervalPairs: 1, NodeComparisons: 12, SolverCalls: 2},
	}

	done := make(chan error, 1)
	go func() {
		if err := a.send(msgHello, &Hello{Version: protoVersion, Name: "w"}); err != nil {
			done <- err
			return
		}
		if err := a.send(msgBatch, &batch); err != nil {
			done <- err
			return
		}
		if err := a.send(msgHeartbeat, nil); err != nil {
			done <- err
			return
		}
		done <- a.send(msgResult, &result)
	}()

	var hello Hello
	if err := b.recvExpect(msgHello, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Version != protoVersion || hello.Name != "w" {
		t.Fatalf("hello changed on the wire: %+v", hello)
	}
	var gotBatch Batch
	if err := b.recvExpect(msgBatch, &gotBatch); err != nil {
		t.Fatal(err)
	}
	if gotBatch.Seq != batch.Seq || len(gotBatch.Units) != 1 || gotBatch.Units[0] != batch.Units[0] ||
		gotBatch.TimeLimit != batch.TimeLimit {
		t.Fatalf("batch changed on the wire:\nin  %+v\nout %+v", batch, gotBatch)
	}
	if err := b.recvExpect(msgHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	var gotRes Result
	if err := b.recvExpect(msgResult, &gotRes); err != nil {
		t.Fatal(err)
	}
	if gotRes.Seq != result.Seq || len(gotRes.Races) != 1 || gotRes.Races[0] != result.Races[0] ||
		gotRes.Stats != result.Stats {
		t.Fatalf("result changed on the wire:\nin  %+v\nout %+v", result, gotRes)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Value("dist.bytes_sent") == 0 || snap.Value("dist.bytes_received") == 0 {
		t.Error("frame byte counters not recorded")
	}
}

// TestRecvRejectsOversizeFrame: a length header past the cap kills the
// read before any allocation of that size.
func TestRecvRejectsOversizeFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
		hdr[4] = msgBatch
		a.Write(hdr[:])
	}()
	fr := newFramer(b, nil)
	if _, _, err := fr.recv(); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// TestRecvRejectsZeroLength: a frame too short to carry its type byte is
// a protocol error.
func TestRecvRejectsZeroLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0, 0, 0, 0, 0})
	fr := newFramer(b, nil)
	if _, _, err := fr.recv(); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// TestRecvExpectTypeMismatch: the handshake helpers refuse out-of-order
// frames instead of mis-decoding them.
func TestRecvExpectTypeMismatch(t *testing.T) {
	a, b := pipePair(nil)
	defer a.conn.Close()
	defer b.conn.Close()
	go a.send(msgHeartbeat, nil)
	if err := b.recvExpect(msgWelcome, &Welcome{}); err == nil {
		t.Fatal("heartbeat accepted as welcome")
	}
}
