package dist

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/trace"
)

// Adaptive batch sizing: a plan below smallPlanVolume collapses into one
// batch (the wire cannot pay for itself on work that small); anything
// larger splits into about targetBatches so the plan spreads across
// workers and each worker's pipeline stays fed.
const (
	smallPlanVolume = 1 << 20
	targetBatches   = 16
)

// unitState tracks one pair unit through dispatch, failure, and retry.
type unitState struct {
	pu       core.PairUnit
	planIdx  int       // position in the group-affine schedule
	attempts int       // dispatches so far
	readyAt  time.Time // earliest next dispatch (exponential backoff)
}

// BatchTiming is one accepted batch's shape and measured analysis time —
// the per-batch record the harness feeds into its scale-out projection.
type BatchTiming struct {
	Units  int
	Cost   uint64 // summed byte-volume pair cost
	BusyNs int64  // worker wall time analyzing the batch
}

// Coordinator plans the analysis from the meta files, serves batches to
// workers, merges their results through the report's dedup, and survives
// worker death by requeueing. Dispatch is pipelined: each connection keeps
// up to 1+Prefetch batches outstanding and the worker streams results back
// in order on the same connection, so a worker moves straight from one
// batch to the next without a request/response round trip. One Coordinator
// runs one analysis.
type Coordinator struct {
	cfg        Config
	rep        *report.Report
	m          *obs.Metrics
	ba         *core.BatchAnalyzer // plan only; Local's inline path analyzes on it
	batchUnits int

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*unitState // undispatched units; readyAt may lie ahead
	remaining int          // units not yet accepted into the report
	failed    error        // fatal: a unit exhausted MaxAttempts
	nextSeq   uint64
	nextWID   int
	timings   []BatchTiming
	done      chan struct{}
	doneOnce  sync.Once
}

// NewCoordinator plans the full analysis of store. Only meta files are
// read — the coordinator never streams a log or builds a tree; that is
// the workers' job.
func NewCoordinator(store trace.Store, opts ...Option) (*Coordinator, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	return newCoordinator(store, cfg)
}

func newCoordinator(store trace.Store, cfg Config) (*Coordinator, error) {
	plan, err := core.NewBatchAnalyzer(store, cfg.Core)
	if err != nil {
		return nil, err
	}
	units := plan.Units()
	c := &Coordinator{
		cfg:  cfg,
		rep:  report.New(),
		m:    cfg.Obs,
		ba:   plan,
		done: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.rep.Stats = plan.StructureStats()
	c.batchUnits = cfg.BatchUnits
	if c.batchUnits <= 0 {
		if plan.Volume() < smallPlanVolume {
			c.batchUnits = max(len(units), 1)
		} else {
			c.batchUnits = max(1, (len(units)+targetBatches-1)/targetBatches)
		}
	}
	c.queue = make([]*unitState, len(units))
	for i, pu := range units {
		c.queue[i] = &unitState{pu: pu, planIdx: i}
	}
	c.remaining = len(units)
	c.m.Counter("dist.units_planned").Add(uint64(len(units)))
	if c.remaining == 0 {
		c.finish()
	}
	return c, nil
}

// PlanVolume plans store with the default configuration and returns the
// trace volume (bytes) the adaptive batch-sizing and inline policies
// decide by — the harness reports it next to the lane numbers.
func PlanVolume(store trace.Store) (int64, error) {
	ba, err := core.NewBatchAnalyzer(store, core.Config{})
	if err != nil {
		return 0, err
	}
	return ba.Volume(), nil
}

// finish closes done exactly once; callers hold c.mu or are in New.
func (c *Coordinator) finish() {
	c.doneOnce.Do(func() { close(c.done) })
}

// Timings returns one record per accepted batch, in acceptance order.
func (c *Coordinator) Timings() []BatchTiming {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]BatchTiming, len(c.timings))
	copy(out, c.timings)
	return out
}

// Serve accepts worker connections on ln until the plan is drained or
// failed, then closes the listener. It blocks; run it in a goroutine and
// collect the result with Wait.
func (c *Coordinator) Serve(ln net.Listener) error {
	go func() {
		<-c.done
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return nil
			default:
				return fmt.Errorf("dist: accept: %w", err)
			}
		}
		go c.handle(conn)
	}
}

// Wait blocks until the analysis completes and returns the merged report,
// or the fatal error if a unit exhausted its attempts.
func (c *Coordinator) Wait() (*report.Report, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	return c.rep, nil
}

// takeBatch blocks until up to batchUnits units are ready for dispatch and
// returns them, or nil when the plan is drained or failed — or when
// stopped trips, which a dying connection uses to pull its dispatcher out
// of the wait without touching global state. Backed-off units become ready
// when their readyAt passes; a timer wakes the wait.
func (c *Coordinator) takeBatch(stopped *atomic.Bool) []*unitState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.failed != nil || c.remaining == 0 || stopped.Load() {
			return nil
		}
		now := time.Now()
		var batch []*unitState
		rest := c.queue[:0]
		for _, u := range c.queue {
			if len(batch) < c.batchUnits && !u.readyAt.After(now) {
				batch = append(batch, u)
			} else {
				rest = append(rest, u)
			}
		}
		if len(batch) > 0 {
			c.queue = rest
			for _, u := range batch {
				u.attempts++
			}
			return batch
		}
		// Nothing ready. If units are backing off, arm a wake-up at the
		// earliest readyAt; if everything is in flight, results or requeues
		// will broadcast.
		if len(c.queue) > 0 {
			earliest := c.queue[0].readyAt
			for _, u := range c.queue[1:] {
				if u.readyAt.Before(earliest) {
					earliest = u.readyAt
				}
			}
			t := time.AfterFunc(time.Until(earliest), c.cond.Broadcast)
			c.cond.Wait()
			t.Stop()
		} else {
			c.cond.Wait()
		}
	}
}

// accept merges one batch's result into the report and retires its units.
func (c *Coordinator) accept(batch []*unitState, res *Result) {
	for _, r := range res.Races {
		c.rep.Add(r)
	}
	var cost uint64
	for _, u := range batch {
		cost += u.pu.Cost
	}
	c.mu.Lock()
	c.rep.Stats.Merge(res.Stats)
	c.timings = append(c.timings, BatchTiming{Units: len(batch), Cost: cost, BusyNs: res.BusyNs})
	c.remaining -= len(batch)
	remaining := c.remaining
	c.mu.Unlock()
	c.m.Counter("dist.units_done").Add(uint64(len(batch)))
	c.m.Counter("dist.batches_done").Inc()
	if remaining == 0 {
		c.finish()
	}
	c.cond.Broadcast()
}

// requeue returns failed batches to the queue with exponential backoff,
// or declares the run failed once a unit is out of attempts.
func (c *Coordinator) requeue(worker string, batch []*unitState, cause error) {
	c.mu.Lock()
	now := time.Now()
	lost := 0
	for _, u := range batch {
		if u.attempts >= c.cfg.MaxAttempts {
			lost++
			if c.failed == nil {
				c.failed = fmt.Errorf("dist: unit %+v vs %+v failed %d attempts (last: %v)",
					u.pu.A, u.pu.B, u.attempts, cause)
			}
			continue
		}
		u.readyAt = now.Add(c.cfg.RetryBackoff << min(u.attempts-1, 16))
		c.queue = append(c.queue, u)
	}
	sort.Slice(c.queue, func(i, j int) bool { return c.queue[i].planIdx < c.queue[j].planIdx })
	failed := c.failed
	c.mu.Unlock()
	c.m.Counter("dist.units_retried").Add(uint64(len(batch) - lost))
	c.m.Counter("dist.units_lost").Add(uint64(lost))
	c.m.Counter("dist.workers_dropped").Inc()
	c.rep.Note("worker %s dropped (%v); %d unit(s) requeued, %d lost", worker, cause, len(batch)-lost, lost)
	if failed != nil {
		c.finish()
	}
	c.cond.Broadcast()
}

// inflight is one dispatched, unacknowledged batch on a connection.
type inflight struct {
	seq      uint64
	batch    []*unitState
	deadline time.Time
}

// workerConn is the per-connection pipelining state shared by a handle's
// dispatcher and reader goroutines.
type workerConn struct {
	c    *Coordinator
	conn net.Conn
	fr   *framer
	name string

	mu      sync.Mutex
	pending []*inflight // dispatch order; results arrive in the same order

	stopped  atomic.Bool
	dead     chan struct{} // closed on failure; wakes the dispatcher's slot wait
	failOnce sync.Once
}

// fail tears the connection down exactly once: outstanding batches are
// requeued, both goroutines are released, and further takeBatch waits
// observe the stop flag. A clean end-of-run exit uses stopQuiet instead.
func (w *workerConn) fail(cause error) {
	w.failOnce.Do(func() {
		w.stopped.Store(true)
		w.mu.Lock()
		pending := w.pending
		w.pending = nil
		w.mu.Unlock()
		var units []*unitState
		for _, inf := range pending {
			units = append(units, inf.batch...)
		}
		if len(units) > 0 {
			w.c.requeue(w.name, units, cause)
		}
		close(w.dead)
		w.conn.Close()
		w.c.cond.Broadcast() // pull a dispatcher out of takeBatch's wait
	})
}

// stopQuiet releases both goroutines at end of run without requeueing or
// drop accounting — the connection is closing because the analysis is
// over, not because the worker died.
func (w *workerConn) stopQuiet() {
	w.failOnce.Do(func() {
		w.stopped.Store(true)
		close(w.dead)
		w.conn.Close()
		w.c.cond.Broadcast()
	})
}

// readDeadline computes the next read deadline: the liveness bound, capped
// by the earliest outstanding batch deadline (heartbeats must not extend a
// batch past BatchTimeout). With nothing outstanding there is no deadline —
// an idle worker sends no frames, and its death surfaces on the next
// dispatch instead.
func (w *workerConn) readDeadline() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) == 0 {
		return time.Time{}
	}
	next := time.Now().Add(w.c.cfg.WorkerTimeout)
	for _, inf := range w.pending {
		if inf.deadline.Before(next) {
			next = inf.deadline
		}
	}
	return next
}

// overrun reports the first outstanding batch past its deadline, if any.
func (w *workerConn) overrun() *inflight {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	for _, inf := range w.pending {
		if now.After(inf.deadline) {
			return inf
		}
	}
	return nil
}

// handle runs one worker connection: handshake with codec negotiation,
// then a dispatcher goroutine that keeps up to 1+Prefetch batches
// outstanding and a reader (this goroutine) that accepts streamed results
// in dispatch order and polices liveness. Any error — protocol violation,
// timeout, a batch overrunning its deadline, an Err result — drops the
// worker and requeues everything outstanding. A dropped worker is never
// handed work again on that connection: results accepted so far came from
// batches that completed wholly, which keeps race-site suppression sound
// (a suppressed instance always has its confirming race in an accepted
// batch).
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	fr := newFramer(conn, c.m)
	conn.SetReadDeadline(time.Now().Add(c.cfg.WorkerTimeout))
	var hello Hello
	if err := fr.recvExpect(msgHello, &hello); err != nil {
		return
	}
	if hello.Version != protoVersion {
		return
	}
	c.mu.Lock()
	c.nextWID++
	name := fmt.Sprintf("w%d", c.nextWID)
	c.mu.Unlock()
	if hello.Name != "" {
		name = fmt.Sprintf("%s(%s)", name, hello.Name)
	}
	// Negotiate the frame codec: the coordinator's configured codec if the
	// worker offered it, bare frames otherwise (an older worker offers
	// nothing; a differently-configured worker offers something else —
	// either way raw is the shared dialect).
	chosen := ""
	if c.cfg.WireCodec != "raw" {
		for _, n := range hello.Codecs {
			if n == c.cfg.WireCodec {
				chosen = n
				break
			}
		}
	}
	if err := fr.send(msgWelcome, &Welcome{Version: protoVersion, Codec: chosen}); err != nil {
		return
	}
	if chosen != "" {
		cd, err := compress.ByName(chosen)
		if err != nil {
			return
		}
		fr.setCodec(cd)
	}
	c.m.Counter("dist.workers_connected").Inc()
	c.m.Gauge("dist.workers_active").Add(1)
	defer c.m.Gauge("dist.workers_active").Add(-1)

	w := &workerConn{c: c, conn: conn, fr: fr, name: name, dead: make(chan struct{})}
	window := 1 + c.cfg.Prefetch
	slots := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		slots <- struct{}{}
	}
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		c.dispatch(w, slots)
	}()
	c.readResults(w, slots)
	dwg.Wait()
}

// dispatch keeps the connection's pipeline full: it claims a window slot,
// pulls the next ready batch, registers it as outstanding, and sends it —
// without waiting for earlier batches' results. On a drained or failed
// plan it sends the shutdown frame and leaves the reader to see the
// worker's clean close.
func (c *Coordinator) dispatch(w *workerConn, slots chan struct{}) {
	for {
		select {
		case <-slots:
		case <-w.dead:
			return
		}
		batch := c.takeBatch(&w.stopped)
		if batch == nil {
			if !w.stopped.Load() {
				w.fr.send(msgShutdown, nil)
				// The reader is waiting (deadline-less when nothing is
				// outstanding) for the worker's close; bound that wait.
				w.conn.SetReadDeadline(time.Now().Add(c.cfg.WorkerTimeout))
			}
			return
		}
		c.mu.Lock()
		c.nextSeq++
		seq := c.nextSeq
		c.mu.Unlock()
		units := make([]core.PairUnit, len(batch))
		for i, u := range batch {
			units[i] = u.pu
		}
		// Register before sending: over loopback the result can arrive
		// before a post-send registration would run.
		w.mu.Lock()
		queued := len(w.pending)
		w.pending = append(w.pending, &inflight{seq: seq, batch: batch, deadline: time.Now().Add(c.cfg.BatchTimeout)})
		w.mu.Unlock()
		if err := w.fr.send(msgBatch, &Batch{Seq: seq, Units: units, TimeLimit: int64(c.cfg.BatchTimeout)}); err != nil {
			w.fail(err)
			return
		}
		// Wake the reader's deadline-less idle read so the liveness timer
		// arms against this dispatch.
		w.conn.SetReadDeadline(w.readDeadline())
		c.m.Counter("dist.batches_sent").Inc()
		c.m.Counter("dist.units_dispatched").Add(uint64(len(units)))
		if queued > 0 {
			c.m.Counter("dist.batches_prefetched").Inc()
		}
	}
}

// readResults consumes the worker's streamed frames: heartbeats feed the
// liveness timer, results retire outstanding batches in dispatch order
// and release their pipeline slot.
func (c *Coordinator) readResults(w *workerConn, slots chan struct{}) {
	for {
		w.conn.SetReadDeadline(w.readDeadline())
		typ, payload, err := w.fr.recv()
		if err != nil {
			select {
			case <-c.done:
				// Run already finished (drained or failed): the close is the
				// worker reacting to shutdown, not a death to account.
				w.stopQuiet()
				return
			default:
			}
			if inf := w.overrun(); inf != nil {
				err = fmt.Errorf("batch %d overran its %v deadline", inf.seq, c.cfg.BatchTimeout)
			}
			w.fail(err)
			return
		}
		switch typ {
		case msgHeartbeat:
			c.m.Counter("dist.heartbeats").Inc()
		case msgResult:
			var res Result
			if err := decodePayload(typ, payload, &res); err != nil {
				w.fail(err)
				return
			}
			w.mu.Lock()
			var inf *inflight
			if len(w.pending) > 0 && w.pending[0].seq == res.Seq {
				inf = w.pending[0]
				w.pending = w.pending[1:]
			}
			w.mu.Unlock()
			if inf == nil {
				w.fail(fmt.Errorf("result for batch %d arrived out of order", res.Seq))
				return
			}
			if res.Err != "" {
				// Put the failed batch back in front of the requeue set.
				w.mu.Lock()
				w.pending = append([]*inflight{inf}, w.pending...)
				w.mu.Unlock()
				w.fail(fmt.Errorf("worker failed batch %d: %s", res.Seq, res.Err))
				return
			}
			c.accept(inf.batch, &res)
			select {
			case slots <- struct{}{}:
			default:
			}
		default:
			w.fail(fmt.Errorf("unexpected %s frame", typeName(typ)))
			return
		}
	}
}
