package dist

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/trace"
)

// CoordinatorConfig parameterizes the work-distribution side.
type CoordinatorConfig struct {
	// Core configures the planning pass (and must match what workers use:
	// NoSolver/AllRaces/NoCompact change what a batch reports).
	Core core.Config
	// BatchUnits is how many pair units one batch carries (default 64).
	// Small batches spread better and lose less on a worker death; large
	// batches amortize tree builds — a worker builds each referenced
	// interval's tree once per batch.
	BatchUnits int
	// WorkerTimeout is the liveness bound: a worker that sends no frame
	// (result or heartbeat) for this long is considered dead, its batch is
	// requeued, and its connection is closed (default 10s).
	WorkerTimeout time.Duration
	// BatchTimeout is the per-batch deadline, heartbeats or not: a batch
	// outstanding longer than this is requeued and its worker dropped —
	// the slow-worker guard (default 2m). Workers receive the limit with
	// the batch and abort their analysis when it expires.
	BatchTimeout time.Duration
	// MaxAttempts bounds how often one unit may be dispatched before the
	// coordinator declares the run failed (default 5). Exhausting it means
	// every attempt hit a dying or disagreeing worker — retrying further
	// would hide a systemic problem behind an incomplete report.
	MaxAttempts int
	// RetryBackoff is the base requeue delay; attempt k waits
	// RetryBackoff·2^(k-1) before redispatch (default 250ms).
	RetryBackoff time.Duration
	// Obs receives the dist.* counters (see docs/FORMAT.md). nil disables.
	Obs *obs.Metrics
}

func (cfg *CoordinatorConfig) fill() {
	if cfg.BatchUnits <= 0 {
		cfg.BatchUnits = 64
	}
	if cfg.WorkerTimeout <= 0 {
		cfg.WorkerTimeout = 10 * time.Second
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
}

// unitState tracks one pair unit through dispatch, failure, and retry.
type unitState struct {
	pu       core.PairUnit
	planIdx  int       // position in the cost-descending schedule
	attempts int       // dispatches so far
	readyAt  time.Time // earliest next dispatch (exponential backoff)
}

// Coordinator plans the analysis from the meta files, serves batches to
// workers, merges their results through the report's dedup, and survives
// worker death by requeueing. One Coordinator runs one analysis.
type Coordinator struct {
	cfg CoordinatorConfig
	rep *report.Report
	m   *obs.Metrics

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*unitState // undispatched units; readyAt may lie ahead
	remaining int          // units not yet accepted into the report
	failed    error        // fatal: a unit exhausted MaxAttempts
	nextSeq   uint64
	nextWID   int
	done      chan struct{}
	doneOnce  sync.Once
}

// NewCoordinator plans the full analysis of store. Only meta files are
// read — the coordinator never streams a log or builds a tree; that is
// the workers' job.
func NewCoordinator(store trace.Store, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.fill()
	plan, err := core.NewBatchAnalyzer(store, cfg.Core)
	if err != nil {
		return nil, err
	}
	units := plan.Units()
	c := &Coordinator{
		cfg:  cfg,
		rep:  report.New(),
		m:    cfg.Obs,
		done: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.rep.Stats = plan.StructureStats()
	c.queue = make([]*unitState, len(units))
	for i, pu := range units {
		c.queue[i] = &unitState{pu: pu, planIdx: i}
	}
	c.remaining = len(units)
	c.m.Counter("dist.units_planned").Add(uint64(len(units)))
	if c.remaining == 0 {
		c.finish()
	}
	return c, nil
}

// finish closes done exactly once; callers hold c.mu or are in New.
func (c *Coordinator) finish() {
	c.doneOnce.Do(func() { close(c.done) })
}

// Serve accepts worker connections on ln until the plan is drained or
// failed, then closes the listener. It blocks; run it in a goroutine and
// collect the result with Wait.
func (c *Coordinator) Serve(ln net.Listener) error {
	go func() {
		<-c.done
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return nil
			default:
				return fmt.Errorf("dist: accept: %w", err)
			}
		}
		go c.handle(conn)
	}
}

// Wait blocks until the analysis completes and returns the merged report,
// or the fatal error if a unit exhausted its attempts.
func (c *Coordinator) Wait() (*report.Report, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	return c.rep, nil
}

// takeBatch blocks until up to BatchUnits units are ready for dispatch and
// returns them, or nil when the plan is drained or failed. Backed-off
// units become ready when their readyAt passes; a timer wakes the wait.
func (c *Coordinator) takeBatch() []*unitState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.failed != nil || c.remaining == 0 {
			return nil
		}
		now := time.Now()
		var batch []*unitState
		rest := c.queue[:0]
		for _, u := range c.queue {
			if len(batch) < c.cfg.BatchUnits && !u.readyAt.After(now) {
				batch = append(batch, u)
			} else {
				rest = append(rest, u)
			}
		}
		if len(batch) > 0 {
			c.queue = rest
			for _, u := range batch {
				u.attempts++
			}
			return batch
		}
		// Nothing ready. If units are backing off, arm a wake-up at the
		// earliest readyAt; if everything is in flight, results or requeues
		// will broadcast.
		if len(c.queue) > 0 {
			earliest := c.queue[0].readyAt
			for _, u := range c.queue[1:] {
				if u.readyAt.Before(earliest) {
					earliest = u.readyAt
				}
			}
			t := time.AfterFunc(time.Until(earliest), c.cond.Broadcast)
			c.cond.Wait()
			t.Stop()
		} else {
			c.cond.Wait()
		}
	}
}

// accept merges one batch's result into the report and retires its units.
func (c *Coordinator) accept(batch []*unitState, res *Result) {
	for _, r := range res.Races {
		c.rep.Add(r)
	}
	c.mu.Lock()
	c.rep.Stats.Merge(res.Stats)
	c.remaining -= len(batch)
	remaining := c.remaining
	c.mu.Unlock()
	c.m.Counter("dist.units_done").Add(uint64(len(batch)))
	c.m.Counter("dist.batches_done").Inc()
	if remaining == 0 {
		c.finish()
	}
	c.cond.Broadcast()
}

// requeue returns a failed batch to the queue with exponential backoff,
// or declares the run failed once a unit is out of attempts.
func (c *Coordinator) requeue(worker string, batch []*unitState, cause error) {
	c.mu.Lock()
	now := time.Now()
	lost := 0
	for _, u := range batch {
		if u.attempts >= c.cfg.MaxAttempts {
			lost++
			if c.failed == nil {
				c.failed = fmt.Errorf("dist: unit %+v vs %+v failed %d attempts (last: %v)",
					u.pu.A, u.pu.B, u.attempts, cause)
			}
			continue
		}
		u.readyAt = now.Add(c.cfg.RetryBackoff << min(u.attempts-1, 16))
		c.queue = append(c.queue, u)
	}
	sort.Slice(c.queue, func(i, j int) bool { return c.queue[i].planIdx < c.queue[j].planIdx })
	failed := c.failed
	c.mu.Unlock()
	c.m.Counter("dist.units_retried").Add(uint64(len(batch) - lost))
	c.m.Counter("dist.units_lost").Add(uint64(lost))
	c.m.Counter("dist.workers_dropped").Inc()
	c.rep.Note("worker %s dropped (%v); %d unit(s) requeued, %d lost", worker, cause, len(batch)-lost, lost)
	if failed != nil {
		c.finish()
	}
	c.cond.Broadcast()
}

// handle runs one worker connection: handshake, then a dispatch loop that
// feeds batches and polices liveness. Any error — protocol violation,
// timeout, a batch overrunning its deadline, an Err result — drops the
// worker and requeues its outstanding batch. A dropped worker is never
// handed work again on that connection: results accepted so far came from
// batches that completed wholly, which keeps race-site suppression sound
// (a suppressed instance always has its confirming race in an accepted
// batch).
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	fr := newFramer(conn, c.m)
	conn.SetReadDeadline(time.Now().Add(c.cfg.WorkerTimeout))
	var hello Hello
	if err := fr.recvExpect(msgHello, &hello); err != nil {
		return
	}
	if hello.Version != protoVersion {
		return
	}
	c.mu.Lock()
	c.nextWID++
	name := fmt.Sprintf("w%d", c.nextWID)
	c.mu.Unlock()
	if hello.Name != "" {
		name = fmt.Sprintf("%s(%s)", name, hello.Name)
	}
	if err := fr.send(msgWelcome, &Welcome{Version: protoVersion}); err != nil {
		return
	}
	c.m.Counter("dist.workers_connected").Inc()
	c.m.Gauge("dist.workers_active").Add(1)
	defer c.m.Gauge("dist.workers_active").Add(-1)

	for {
		batch := c.takeBatch()
		if batch == nil {
			fr.send(msgShutdown, nil)
			return
		}
		c.mu.Lock()
		c.nextSeq++
		seq := c.nextSeq
		c.mu.Unlock()
		units := make([]core.PairUnit, len(batch))
		for i, u := range batch {
			units[i] = u.pu
		}
		if err := fr.send(msgBatch, &Batch{Seq: seq, Units: units, TimeLimit: int64(c.cfg.BatchTimeout)}); err != nil {
			c.requeue(name, batch, err)
			return
		}
		c.m.Counter("dist.batches_sent").Inc()
		c.m.Counter("dist.units_dispatched").Add(uint64(len(units)))
		res, err := c.awaitResult(fr, conn, seq)
		if err != nil {
			c.requeue(name, batch, err)
			return
		}
		c.accept(batch, res)
	}
}

// awaitResult reads frames until the batch's result arrives, feeding the
// liveness timer from heartbeats but never extending past the batch
// deadline.
func (c *Coordinator) awaitResult(fr *framer, conn net.Conn, seq uint64) (*Result, error) {
	deadline := time.Now().Add(c.cfg.BatchTimeout)
	for {
		next := time.Now().Add(c.cfg.WorkerTimeout)
		if next.After(deadline) {
			next = deadline
		}
		conn.SetReadDeadline(next)
		typ, payload, err := fr.recv()
		if err != nil {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("batch %d overran its %v deadline", seq, c.cfg.BatchTimeout)
			}
			return nil, err
		}
		switch typ {
		case msgHeartbeat:
			c.m.Counter("dist.heartbeats").Inc()
		case msgResult:
			var res Result
			if err := decodePayload(typ, payload, &res); err != nil {
				return nil, err
			}
			if res.Seq != seq {
				return nil, fmt.Errorf("result for batch %d, want %d", res.Seq, seq)
			}
			if res.Err != "" {
				return nil, fmt.Errorf("worker failed batch %d: %s", seq, res.Err)
			}
			return &res, nil
		default:
			return nil, fmt.Errorf("unexpected %s frame awaiting batch %d", typeName(typ), seq)
		}
	}
}
