package dist

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/trace"
)

// startCoordinator serves a coordinator built from opts on a loopback
// listener and returns it with its address.
func startCoordinator(t *testing.T, store trace.Store, opts ...Option) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	return coord, ln.Addr().String()
}

// TestCodecNegotiation runs a coordinator and worker through every
// codec-configuration combination, asserting the handshake converges on
// the shared dialect and the race set always matches the single-process
// run — the mixed-version interop matrix, minus the time machine.
func TestCodecNegotiation(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name             string
		coordCodec       string
		workCodec        string
		wantCompressed   bool // dist.frames_compressed > 0 expected
		wantUncompressed bool // every frame bare or raw-enveloped
	}{
		{"both lzss", "lzss", "lzss", true, false},
		{"both flate", "flate", "flate", true, false},
		{"coordinator raw, worker lzss", "raw", "lzss", false, true},
		{"coordinator lzss, worker raw", "lzss", "raw", false, true},
		{"codec mismatch falls back", "lzss", "flate", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := obs.New()
			coord, addr := startCoordinator(t, store,
				WithWireCodec(tc.coordCodec), WithObs(m), WithBatchUnits(2))
			werr := make(chan error, 1)
			go func() {
				werr <- Work(context.Background(), addr, store,
					WithWireCodec(tc.workCodec), WithObs(m))
			}()
			rep, err := coord.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if err := <-werr; err != nil {
				t.Fatalf("worker: %v", err)
			}
			wantSameRaces(t, tc.name, rep, base)
			snap := m.Snapshot()
			compressed := snap.Value("dist.frames_compressed")
			if tc.wantCompressed && compressed == 0 {
				t.Error("no frame was compressed on a matched-codec connection")
			}
			if tc.wantUncompressed && compressed != 0 {
				t.Errorf("%d frame(s) compressed despite a codec mismatch", compressed)
			}
			if tc.wantCompressed {
				cb, rb := snap.Value("dist.frames_compressed_bytes"), snap.Value("dist.frames_raw_bytes")
				if cb <= 0 || rb <= 0 || cb >= rb {
					t.Errorf("compressed %d bytes standing for %d raw — compression recorded no win", cb, rb)
				}
			}
		})
	}
}

// TestLegacyWorkerHandshake plays an old worker by hand: a hello with no
// Codecs field (gob omits it — exactly what a pre-compression build sends)
// must be welcomed with no codec and served bare frames, and after the
// legacy connection drops, a current worker finishes the plan.
func TestLegacyWorkerHandshake(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	coord, addr := startCoordinator(t, store,
		WithBatchUnits(2), WithRetryBackoff(1), WithWorkerTimeout(500000000))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fr := newFramer(conn, nil) // never setCodec: the legacy dialect
	if err := fr.send(msgHello, &Hello{Version: protoVersion, Name: "legacy"}); err != nil {
		t.Fatal(err)
	}
	var welcome Welcome
	if err := fr.recvExpect(msgWelcome, &welcome); err != nil {
		t.Fatal(err)
	}
	if welcome.Codec != "" {
		t.Fatalf("coordinator picked codec %q for a worker that offered none", welcome.Codec)
	}
	// The first dispatched frame must be a bare-gob batch a legacy decoder
	// understands.
	var batch Batch
	if err := fr.recvExpect(msgBatch, &batch); err != nil {
		t.Fatalf("legacy worker could not decode its batch: %v", err)
	}
	if len(batch.Units) == 0 {
		t.Fatal("empty batch dispatched")
	}
	conn.Close() // die without a result; the batch requeues

	werr := make(chan error, 1)
	go func() { werr <- Work(context.Background(), addr, store) }()
	rep, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-werr; err != nil {
		t.Fatalf("worker: %v", err)
	}
	wantSameRaces(t, "after legacy worker death", rep, base)
}

// TestEnvelopeRawFallback: on a negotiated connection, a payload the codec
// cannot shrink (a bodyless heartbeat) ships raw inside the envelope, and
// a repetitive payload ships compressed — both must round-trip.
func TestEnvelopeRawFallback(t *testing.T) {
	m := obs.New()
	a, b := pipePair(m)
	defer a.conn.Close()
	defer b.conn.Close()
	cd, err := compress.ByName("lzss")
	if err != nil {
		t.Fatal(err)
	}
	a.setCodec(cd)
	b.setCodec(cd)

	done := make(chan error, 1)
	units := make([]core.PairUnit, 64)
	for i := range units {
		units[i] = core.PairUnit{
			A:    core.UnitID{Key: trace.IntervalKey{PID: 1, TID: 2, BID: uint64(i)}},
			B:    core.UnitID{Key: trace.IntervalKey{PID: 1, TID: 3, BID: uint64(i)}},
			Cost: 4096,
		}
	}
	go func() {
		if err := a.send(msgHeartbeat, nil); err != nil { // empty: cannot shrink
			done <- err
			return
		}
		done <- a.send(msgBatch, &Batch{Seq: 1, Units: units}) // repetitive: shrinks
	}()
	if err := b.recvExpect(msgHeartbeat, nil); err != nil {
		t.Fatalf("raw-enveloped heartbeat: %v", err)
	}
	if v := m.Snapshot().Value("dist.frames_compressed"); v != 0 {
		t.Fatalf("heartbeat counted as compressed (%d)", v)
	}
	var got Batch
	if err := b.recvExpect(msgBatch, &got); err != nil {
		t.Fatalf("compressed batch: %v", err)
	}
	if len(got.Units) != len(units) || got.Units[0] != units[0] || got.Units[63] != units[63] {
		t.Fatal("batch changed through the compression envelope")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if v := snap.Value("dist.frames_compressed"); v != 1 {
		t.Fatalf("dist.frames_compressed = %d, want 1", v)
	}
	if cb, rb := snap.Value("dist.frames_compressed_bytes"), snap.Value("dist.frames_raw_bytes"); cb >= rb {
		t.Fatalf("compressed %d bytes >= raw %d", cb, rb)
	}
}

// TestPrefetchDrainOnWorkerDeath is the pipeline's fault-injection leg:
// with a deep prefetch window and one-unit batches, a worker dies with
// prefetched batches queued beyond the one it is analyzing. Every
// outstanding batch — active and prefetched — must requeue onto the
// survivor, with nothing lost and the race set intact.
func TestPrefetchDrainOnWorkerDeath(t *testing.T) {
	store := collectWorkload(t, "c_md")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	var calls atomic.Uint64
	rep, err := Local(context.Background(), store, 2,
		WithBatchUnits(1),
		WithPrefetch(3),
		WithRetryBackoff(1000000), // 1ms
		WithObs(m),
		WithInlineBelow(-1),
		WithBatchHook(func(seq uint64, units []core.PairUnit) error {
			// Die on the second batch analyzed anywhere: by then the window
			// has filled, so prefetched batches are outstanding mid-stream.
			if calls.Add(1) == 2 {
				return errors.New("injected death mid-stream")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	wantSameRaces(t, "after prefetch-queue death", rep, base)
	snap := m.Snapshot()
	if v := snap.Value("dist.batches_prefetched"); v <= 0 {
		t.Errorf("dist.batches_prefetched = %d, want > 0 (window never filled)", v)
	}
	if v := snap.Value("dist.units_retried"); v <= 0 {
		t.Errorf("dist.units_retried = %d, want > 0", v)
	}
	if v := snap.Value("dist.units_lost"); v != 0 {
		t.Errorf("dist.units_lost = %d, want 0", v)
	}
	if v := snap.Value("dist.workers_dropped"); v != 1 {
		t.Errorf("dist.workers_dropped = %d, want 1", v)
	}
}

// TestResidentEviction: a one-byte resident budget can hold nothing, so
// every batch's trees are evicted after use — the eviction path must fire
// without changing the race set.
func TestResidentEviction(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	rep, err := Local(context.Background(), store, 1,
		WithBatchUnits(1),
		WithResidentBudget(1),
		WithObs(m),
		WithInlineBelow(-1))
	if err != nil {
		t.Fatal(err)
	}
	wantSameRaces(t, "under 1-byte resident budget", rep, base)
	snap := m.Snapshot()
	if v := snap.Value("core.resident_evictions"); v <= 0 {
		t.Errorf("core.resident_evictions = %d, want > 0", v)
	}
}

// TestResidentReuse: under the default budget, one-unit batches revisit
// the same intervals batch after batch; the resident cache must convert
// those into hits (trees built once, reused), with the peak gauge set.
func TestResidentReuse(t *testing.T) {
	store := collectWorkload(t, "c_md")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	rep, err := Local(context.Background(), store, 1,
		WithBatchUnits(1),
		WithObs(m),
		WithInlineBelow(-1))
	if err != nil {
		t.Fatal(err)
	}
	wantSameRaces(t, "with resident trees", rep, base)
	snap := m.Snapshot()
	if v := snap.Value("core.resident_hits"); v <= 0 {
		t.Errorf("core.resident_hits = %d, want > 0 (group-affine batches share intervals)", v)
	}
	if v := snap.Value("core.units_resident_peak"); v <= 0 {
		t.Errorf("core.units_resident_peak = %d, want > 0", v)
	}
}

// TestLocalInlinesTinyPlans: with the shipped defaults, every bundled
// workload's plan is far below the inline cutoff, so Local must analyze
// in-process — no listener, no workers — and still match the
// single-process race set exactly.
func TestLocalInlinesTinyPlans(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	rep, err := Local(context.Background(), store, 4, WithObs(m))
	if err != nil {
		t.Fatal(err)
	}
	wantSameRaces(t, "inline path", rep, base)
	snap := m.Snapshot()
	if v := snap.Value("dist.inline_runs"); v != 1 {
		t.Errorf("dist.inline_runs = %d, want 1", v)
	}
	if v := snap.Value("dist.workers_connected"); v != 0 {
		t.Errorf("dist.workers_connected = %d on the inline path, want 0", v)
	}
	var noted bool
	for _, n := range rep.Notes() {
		noted = noted || strings.Contains(n, "inline")
	}
	if !noted {
		t.Errorf("no inline note in the report; notes: %v", rep.Notes())
	}
}

// TestAdaptiveBatchSizing: with no explicit BatchUnits, a plan below the
// small-plan volume collapses into one batch; an explicit size wins.
func TestAdaptiveBatchSizing(t *testing.T) {
	store := collectWorkload(t, "c_md")
	coord, err := NewCoordinator(store)
	if err != nil {
		t.Fatal(err)
	}
	units := len(coord.ba.Units())
	if units == 0 {
		t.Fatal("no units planned")
	}
	if coord.ba.Volume() >= smallPlanVolume {
		t.Skipf("workload grew past smallPlanVolume (%d bytes)", coord.ba.Volume())
	}
	if coord.batchUnits != units {
		t.Errorf("adaptive batchUnits = %d on a small plan of %d units, want one batch", coord.batchUnits, units)
	}
	fixed, err := NewCoordinator(store, WithBatchUnits(3))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.batchUnits != 3 {
		t.Errorf("explicit batchUnits = %d, want 3", fixed.batchUnits)
	}
	coord.finish()
	fixed.finish()
}
