package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
)

// Wire protocol: every message is one frame,
//
//	[4 bytes big-endian payload length][1 byte type][payload]
//
// over a plain TCP stream. The length covers the type byte plus the
// payload, so a reader can skip unknown frames. Frames are capped at
// maxFrame: a length beyond it means a corrupt or hostile stream and
// kills the connection rather than an allocation.
//
// The handshake frames (hello, welcome) always carry a bare gob payload.
// The hello offers the worker's compression codecs and the welcome picks
// one; when a codec is negotiated, every later frame's payload is an
// envelope
//
//	[1 byte codec id][4 bytes big-endian raw length][body]
//
// where body is the gob payload compressed with the named codec — or the
// raw gob bytes under codec id 0 when compression did not shrink that
// particular frame. A peer that offers nothing (an older build; gob
// ignores the unknown handshake fields) negotiates no codec and speaks
// bare frames for the whole connection, so mixed versions interoperate.
// The layout is documented for operators in docs/FORMAT.md ("Distributed
// analysis").
const (
	protoVersion = 1
	maxFrame     = 64 << 20 // 64 MiB: far above any real batch or result
	headerLen    = 5
	envLen       = 5 // codec id + raw length, on negotiated connections
)

// Frame types.
const (
	msgHello     byte = iota + 1 // worker → coordinator: version, name, codecs
	msgWelcome                   // coordinator → worker: version accepted, codec picked
	msgBatch                     // coordinator → worker: units to analyze
	msgResult                    // worker → coordinator: races + stats delta
	msgHeartbeat                 // worker → coordinator: alive mid-batch
	msgShutdown                  // coordinator → worker: no more work
)

// typeName renders a frame type for error messages.
func typeName(t byte) string {
	switch t {
	case msgHello:
		return "hello"
	case msgWelcome:
		return "welcome"
	case msgBatch:
		return "batch"
	case msgResult:
		return "result"
	case msgHeartbeat:
		return "heartbeat"
	case msgShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("type-%d", t)
}

// Hello is the worker's opening frame. Codecs lists the frame compressors
// the worker offers in preference order; absent (an older worker) means
// bare frames.
type Hello struct {
	Version int
	Name    string // worker's self-chosen label, for notes and metrics
	Codecs  []string
}

// Welcome acknowledges a compatible worker. Codec names the negotiated
// frame compressor — one of the hello's offers — or is empty for bare
// frames (also what an older coordinator, which never sets the field,
// answers).
type Welcome struct {
	Version int
	Codec   string
}

// Batch hands a worker one slice of the work plan. TimeLimit is the
// coordinator's per-batch deadline; the worker derives a context timeout
// from it so it stops burning cycles on work the coordinator already gave
// up on.
type Batch struct {
	Seq       uint64
	Units     []core.PairUnit
	TimeLimit int64 // nanoseconds; 0 = no limit
}

// Result carries one batch's outcome back: the races found and the
// engine-effort delta for exactly this batch. BusyNs is the worker's wall
// time analyzing the batch (excluding queueing and transport), the input
// to the harness's scale-out projection. A non-empty Err means the worker
// could not analyze the batch (e.g. its structure disagrees with the
// coordinator's plan); the coordinator drops the worker and requeues.
type Result struct {
	Seq    uint64
	Races  []report.Race
	Stats  report.Stats
	BusyNs int64
	Err    string
}

// Heartbeat keeps the coordinator's liveness timer fed during long
// batches. No payload.
type Heartbeat struct{}

// Shutdown tells a worker the plan is drained. No payload.
type Shutdown struct{}

// framer reads and writes frames on one connection. Writes are
// mutex-serialized because a worker's heartbeat ticker writes concurrently
// with its result sender. Byte counters feed dist.bytes_sent/_received.
// setCodec (called once, between the handshake and the first data frame)
// switches both directions to enveloped, compressed payloads.
type framer struct {
	conn  net.Conn
	r     *bufio.Reader
	m     *obs.Metrics
	codec compress.Codec // negotiated; nil = bare frames

	wmu  sync.Mutex
	buf  bytes.Buffer // assembled frame
	gbuf bytes.Buffer // gob staging (compressed connections)
	cbuf []byte       // compression scratch
}

func newFramer(conn net.Conn, m *obs.Metrics) *framer {
	return &framer{conn: conn, r: bufio.NewReader(conn), m: m}
}

// setCodec switches the connection to compressed envelopes. Callers must
// invoke it after the handshake and before any concurrent sends.
func (f *framer) setCodec(c compress.Codec) {
	f.wmu.Lock()
	f.codec = c
	f.wmu.Unlock()
}

// send gob-encodes payload and writes one frame. payload may be nil for
// bodyless types (heartbeat, shutdown).
func (f *framer) send(typ byte, payload any) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	f.buf.Reset()
	f.buf.Write([]byte{0, 0, 0, 0, typ})
	if f.codec == nil {
		if payload != nil {
			if err := gob.NewEncoder(&f.buf).Encode(payload); err != nil {
				return fmt.Errorf("dist: encode %s: %w", typeName(typ), err)
			}
		}
	} else {
		f.gbuf.Reset()
		if payload != nil {
			if err := gob.NewEncoder(&f.gbuf).Encode(payload); err != nil {
				return fmt.Errorf("dist: encode %s: %w", typeName(typ), err)
			}
		}
		raw := f.gbuf.Bytes()
		var env [envLen]byte
		binary.BigEndian.PutUint32(env[1:], uint32(len(raw)))
		f.cbuf = f.codec.Compress(f.cbuf[:0], raw)
		if len(f.cbuf) < len(raw) {
			env[0] = f.codec.ID()
			f.buf.Write(env[:])
			f.buf.Write(f.cbuf)
			f.m.Counter("dist.frames_compressed").Inc()
			f.m.Counter("dist.frames_compressed_bytes").Add(uint64(len(f.cbuf)))
			f.m.Counter("dist.frames_raw_bytes").Add(uint64(len(raw)))
		} else {
			// Per-frame fallback: this payload (a heartbeat, an
			// already-dense result) would grow; ship it raw inside the
			// envelope.
			env[0] = compress.IDRaw
			f.buf.Write(env[:])
			f.buf.Write(raw)
		}
	}
	b := f.buf.Bytes()
	if len(b) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d-byte cap", typeName(typ), len(b), maxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := f.conn.Write(b); err != nil {
		return fmt.Errorf("dist: write %s: %w", typeName(typ), err)
	}
	f.m.Counter("dist.bytes_sent").Add(uint64(len(b)))
	return nil
}

// recv reads one frame and returns its type and raw gob payload,
// unwrapping the compression envelope on negotiated connections.
func (f *framer) recv() (byte, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d outside [1, %d]", n, maxFrame)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(f.r, payload); err != nil {
		return 0, nil, fmt.Errorf("dist: short %s frame: %w", typeName(hdr[4]), err)
	}
	f.m.Counter("dist.bytes_received").Add(uint64(headerLen) + uint64(n-1))
	typ := hdr[4]
	if f.codec == nil {
		return typ, payload, nil
	}
	if len(payload) < envLen {
		return 0, nil, fmt.Errorf("dist: %s frame of %d bytes is shorter than the compression envelope", typeName(typ), len(payload))
	}
	rawLen := binary.BigEndian.Uint32(payload[1:envLen])
	if rawLen > maxFrame {
		// A decompression bomb cannot hide behind a small frame.
		return 0, nil, fmt.Errorf("dist: %s frame declares %d raw bytes, beyond the %d-byte cap", typeName(typ), rawLen, maxFrame)
	}
	body := payload[envLen:]
	if payload[0] == compress.IDRaw {
		if int(rawLen) != len(body) {
			return 0, nil, fmt.Errorf("dist: raw-enveloped %s frame length %d, want %d", typeName(typ), len(body), rawLen)
		}
		return typ, body, nil
	}
	cd, err := compress.ByID(payload[0])
	if err != nil {
		return 0, nil, fmt.Errorf("dist: %s frame: %w", typeName(typ), err)
	}
	raw, err := cd.Decompress(make([]byte, 0, rawLen), body, int(rawLen))
	if err != nil {
		return 0, nil, fmt.Errorf("dist: decompress %s frame: %w", typeName(typ), err)
	}
	return typ, raw, nil
}

// recvExpect reads one frame and requires it to be of type want, decoding
// the payload into out (which may be nil for bodyless types).
func (f *framer) recvExpect(want byte, out any) error {
	typ, payload, err := f.recv()
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("dist: got %s frame, want %s", typeName(typ), typeName(want))
	}
	return decodePayload(typ, payload, out)
}

func decodePayload(typ byte, payload []byte, out any) error {
	if out == nil {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("dist: decode %s: %w", typeName(typ), err)
	}
	return nil
}
