package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
)

// Wire protocol: every message is one frame,
//
//	[4 bytes big-endian payload length][1 byte type][gob payload]
//
// over a plain TCP stream. The length covers the type byte plus the gob
// payload, so a reader can skip unknown frames. Frames are capped at
// maxFrame: a length beyond it means a corrupt or hostile stream and
// kills the connection rather than an allocation. The layout is
// documented for operators in docs/FORMAT.md ("Distributed analysis").
const (
	protoVersion = 1
	maxFrame     = 64 << 20 // 64 MiB: far above any real batch or result
	headerLen    = 5
)

// Frame types.
const (
	msgHello     byte = iota + 1 // worker → coordinator: version, name
	msgWelcome                   // coordinator → worker: version accepted
	msgBatch                     // coordinator → worker: units to analyze
	msgResult                    // worker → coordinator: races + stats delta
	msgHeartbeat                 // worker → coordinator: alive mid-batch
	msgShutdown                  // coordinator → worker: no more work
)

// typeName renders a frame type for error messages.
func typeName(t byte) string {
	switch t {
	case msgHello:
		return "hello"
	case msgWelcome:
		return "welcome"
	case msgBatch:
		return "batch"
	case msgResult:
		return "result"
	case msgHeartbeat:
		return "heartbeat"
	case msgShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("type-%d", t)
}

// Hello is the worker's opening frame.
type Hello struct {
	Version int
	Name    string // worker's self-chosen label, for notes and metrics
}

// Welcome acknowledges a compatible worker.
type Welcome struct {
	Version int
}

// Batch hands a worker one slice of the work plan. TimeLimit is the
// coordinator's per-batch deadline; the worker derives a context timeout
// from it so it stops burning cycles on work the coordinator already gave
// up on.
type Batch struct {
	Seq       uint64
	Units     []core.PairUnit
	TimeLimit int64 // nanoseconds; 0 = no limit
}

// Result carries one batch's outcome back: the races found and the
// engine-effort delta for exactly this batch. A non-empty Err means the
// worker could not analyze the batch (e.g. its structure disagrees with
// the coordinator's plan); the coordinator drops the worker and requeues.
type Result struct {
	Seq   uint64
	Races []report.Race
	Stats report.Stats
	Err   string
}

// Heartbeat keeps the coordinator's liveness timer fed during long
// batches. No payload.
type Heartbeat struct{}

// Shutdown tells a worker the plan is drained. No payload.
type Shutdown struct{}

// framer reads and writes frames on one connection. Writes are
// mutex-serialized because a worker's heartbeat ticker writes concurrently
// with its result sender. Byte counters feed dist.bytes_sent/_received.
type framer struct {
	conn net.Conn
	r    *bufio.Reader
	m    *obs.Metrics

	wmu sync.Mutex
	buf bytes.Buffer
}

func newFramer(conn net.Conn, m *obs.Metrics) *framer {
	return &framer{conn: conn, r: bufio.NewReader(conn), m: m}
}

// send gob-encodes payload and writes one frame. payload may be nil for
// bodyless types (heartbeat, shutdown).
func (f *framer) send(typ byte, payload any) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	f.buf.Reset()
	f.buf.Write([]byte{0, 0, 0, 0, typ})
	if payload != nil {
		if err := gob.NewEncoder(&f.buf).Encode(payload); err != nil {
			return fmt.Errorf("dist: encode %s: %w", typeName(typ), err)
		}
	}
	b := f.buf.Bytes()
	if len(b) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d-byte cap", typeName(typ), len(b), maxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := f.conn.Write(b); err != nil {
		return fmt.Errorf("dist: write %s: %w", typeName(typ), err)
	}
	f.m.Counter("dist.bytes_sent").Add(uint64(len(b)))
	return nil
}

// recv reads one frame and returns its type and raw gob payload.
func (f *framer) recv() (byte, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d outside [1, %d]", n, maxFrame)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(f.r, payload); err != nil {
		return 0, nil, fmt.Errorf("dist: short %s frame: %w", typeName(hdr[4]), err)
	}
	f.m.Counter("dist.bytes_received").Add(uint64(headerLen) + uint64(n-1))
	return hdr[4], payload, nil
}

// recvExpect reads one frame and requires it to be of type want, decoding
// the payload into out (which may be nil for bodyless types).
func (f *framer) recvExpect(want byte, out any) error {
	typ, payload, err := f.recv()
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("dist: got %s frame, want %s", typeName(typ), typeName(want))
	}
	return decodePayload(typ, payload, out)
}

func decodePayload(typ byte, payload []byte, out any) error {
	if out == nil {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("dist: decode %s: %w", typeName(typ), err)
	}
	return nil
}
