package dist

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"sword/internal/core"
	"sword/internal/obs"
)

// TestWorkerReconnectsToLateListener: a worker started before its
// coordinator must keep dialing under WithDialRetries until the listener
// comes up, then drain cleanly and agree with the single-process run.
func TestWorkerReconnectsToLateListener(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Reserve a loopback port, then free it so the worker's first dials
	// hit connection-refused — the late-bound-listener scenario.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	m := obs.New()
	workErr := make(chan error, 1)
	go func() {
		workErr <- Work(context.Background(), addr, store,
			WithDialRetries(200), WithDialBackoff(2*time.Millisecond), WithObs(m))
	}()
	time.Sleep(50 * time.Millisecond) // let several dials fail first

	coord, err := NewCoordinator(store, WithBatchUnits(2))
	if err != nil {
		t.Fatal(err)
	}
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	rep, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workErr; err != nil {
		t.Fatalf("worker did not drain cleanly: %v", err)
	}
	wantSameRaces(t, "late-bound listener", rep, base)
	if m.Snapshot().Value("dist.worker_reconnects") == 0 {
		t.Fatal("worker never recorded a reconnect attempt")
	}
}

// TestWorkerRejoinsAfterTornSession: connections torn before the
// handshake completes (a coordinator crash-restart, as the worker sees
// it) must be retried like failed dials, and the eventual real session
// still drains.
func TestWorkerRejoinsAfterTornSession(t *testing.T) {
	store := collectWorkload(t, "plusplus-orig-yes")
	base, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, WithBatchUnits(2))
	if err != nil {
		t.Fatal(err)
	}
	// The first two connections are accepted and immediately torn — the
	// flaky incarnation — before the real coordinator takes the listener.
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
		coord.Serve(ln)
	}()
	workErr := make(chan error, 1)
	go func() {
		workErr <- Work(context.Background(), ln.Addr().String(), store,
			WithDialRetries(200), WithDialBackoff(2*time.Millisecond))
	}()
	rep, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workErr; err != nil {
		t.Fatalf("worker did not drain cleanly: %v", err)
	}
	wantSameRaces(t, "torn-session rejoin", rep, base)
}

// TestWorkerDialRetriesExhausted: with no listener ever bound, the worker
// must give up after its retry budget and surface the dial error.
func TestWorkerDialRetriesExhausted(t *testing.T) {
	store := collectWorkload(t, "critical-no")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	err = Work(context.Background(), addr, store,
		WithDialRetries(3), WithDialBackoff(time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "dial") {
		t.Fatalf("want dial error after exhausted retries, got %v", err)
	}
}

// TestWorkerReconnectHonorsCancel: cancellation during the backoff sleep
// must end the retry loop promptly instead of burning the whole budget.
func TestWorkerReconnectHonorsCancel(t *testing.T) {
	store := collectWorkload(t, "critical-no")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = Work(ctx, addr, store, WithDialRetries(1000), WithDialBackoff(time.Second))
	if err != context.DeadlineExceeded {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to end the retry loop", elapsed)
	}
}

// TestConfigValidation: misconfiguration must fail loudly at
// NewCoordinator/Work time, not be silently rewritten to defaults or
// stall liveness detection at runtime.
func TestConfigValidation(t *testing.T) {
	store := collectWorkload(t, "critical-no")
	cases := []struct {
		name string
		opt  Option
		want string // substring of the error
	}{
		{"negative worker timeout", WithWorkerTimeout(-time.Second), "WorkerTimeout"},
		{"negative batch timeout", WithBatchTimeout(-1), "BatchTimeout"},
		{"negative retry backoff", WithRetryBackoff(-time.Millisecond), "RetryBackoff"},
		{"negative heartbeat", WithHeartbeatEvery(-time.Second), "HeartbeatEvery"},
		{"negative dial backoff", WithDialBackoff(-time.Second), "DialBackoff"},
		{"negative max attempts", WithMaxAttempts(-1), "MaxAttempts"},
		{"negative dial retries", WithDialRetries(-1), "DialRetries"},
		{"heartbeat at liveness bound", func(c *Config) {
			c.WorkerTimeout = time.Second
			c.HeartbeatEvery = time.Second
		}, "HeartbeatEvery"},
		{"heartbeat beyond liveness bound", func(c *Config) {
			c.WorkerTimeout = 50 * time.Millisecond
			c.HeartbeatEvery = time.Minute
		}, "HeartbeatEvery"},
		{"unknown wire codec", WithWireCodec("zstd"), "zstd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCoordinator(store, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("NewCoordinator: want error mentioning %q, got %v", tc.want, err)
			}
			// Work must reject the config before ever dialing: the address
			// is unroutable, so a dial error here would mean validation ran
			// too late (or not at all).
			err := Work(context.Background(), "127.0.0.1:1", store, tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) || strings.Contains(err.Error(), "dial") {
				t.Errorf("Work: want config error mentioning %q before dialing, got %v", tc.want, err)
			}
			if _, err := Local(context.Background(), store, 1, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Local: want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
	// Documented negative sentinels must stay legal.
	for _, ok := range []struct {
		name string
		opt  Option
	}{
		{"negative prefetch disables", WithPrefetch(-1)},
		{"negative resident budget disables", WithResidentBudget(-1)},
		{"negative inline-below forces wire", WithInlineBelow(-1)},
	} {
		t.Run(ok.name, func(t *testing.T) {
			if _, err := NewCoordinator(store, ok.opt); err != nil {
				t.Errorf("sentinel rejected: %v", err)
			}
		})
	}
}
