// Package obs is SWORD's observability layer: a lightweight registry of
// atomic counters, gauges and phase timers threaded through both phases of
// the pipeline — the dynamic collector (events, buffer fills, flush
// latency, compressed vs raw bytes), the flush codecs (per-codec ratio and
// throughput), and the offline analyzer (per-phase wall times, interval
// pairs, solver invocations vs bounding-box fast-paths, peak resident tree
// nodes).
//
// The paper's whole pitch is *bounded, predictable* overhead in production
// runs; this package is the gauge that makes that claim measurable on the
// reproduction instead of relying on ad-hoc timers. Everything is
// allocation-free on the hot path (one atomic add per recorded value) and
// every handle is nil-safe: a nil *Metrics yields nil instruments whose
// methods are no-ops, so instrumented code never branches on "is
// observability enabled".
//
// Snapshots are deterministic (sorted by name) and export through a
// pluggable Sink — JSON, CSV, or expvar — so the CLIs' -metrics-out flags
// and the experiment harness share one schema (documented in
// docs/FORMAT.md).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metric kinds, as they appear in exported snapshots.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindTimer   = "timer"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; zero on a nil counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value; SetMax turns it into a
// high-water mark (peak resident tree nodes, live slots).
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value; zero on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-time observations: a total duration and a count,
// from which rates and means derive.
type Timer struct {
	total atomic.Int64 // nanoseconds
	count atomic.Uint64
}

// Observe adds one duration sample. No-op on a nil timer.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.total.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated duration; zero on a nil timer.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Count returns the number of observations; zero on a nil timer.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Metrics is a named-instrument registry. Instruments are created on
// first use and live for the registry's lifetime; handles are cheap to
// cache and safe for concurrent use. The zero of *Metrics (nil) is a
// valid disabled registry: every lookup returns a nil no-op instrument.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// New returns an empty registry.
func New() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns (creating if needed) the named counter; nil when the
// registry is nil.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil when the
// registry is nil.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) the named timer; nil when the
// registry is nil.
func (m *Metrics) Timer(name string) *Timer {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.timers[name]
	if !ok {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// Metric is one instrument's exported state. Counters and gauges carry
// Value; timers carry Value (total nanoseconds) plus Count (observations).
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value"`
	Count uint64 `json:"count,omitempty"`
}

// Duration interprets the metric's value as nanoseconds (timers).
func (m Metric) Duration() time.Duration { return time.Duration(m.Value) }

// Snapshot is a point-in-time export of a registry, sorted by name so
// serialized forms are stable (golden-testable).
type Snapshot []Metric

// Snapshot captures every instrument's current value. A nil registry
// yields a nil snapshot.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	s := make(Snapshot, 0, len(m.counters)+len(m.gauges)+len(m.timers))
	for name, c := range m.counters {
		s = append(s, Metric{Name: name, Kind: KindCounter, Value: int64(c.Load())})
	}
	for name, g := range m.gauges {
		s = append(s, Metric{Name: name, Kind: KindGauge, Value: g.Load()})
	}
	for name, t := range m.timers {
		s = append(s, Metric{Name: name, Kind: KindTimer, Value: int64(t.Total()), Count: t.Count()})
	}
	m.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// Get returns the named metric and whether it exists.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Metric{}, false
}

// Value returns the named metric's value, zero when absent.
func (s Snapshot) Value(name string) int64 {
	m, _ := s.Get(name)
	return m.Value
}

// Duration returns the named timer's total, zero when absent.
func (s Snapshot) Duration(name string) time.Duration {
	m, _ := s.Get(name)
	return m.Duration()
}
