package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Sink receives metric snapshots. The CLIs' -metrics-out flags, the
// experiment harness's overhead curves, and the public sword.Config Obs
// hook all speak this interface.
type Sink interface {
	Export(s Snapshot) error
}

// JSONSink writes snapshots as a single JSON document
// {"metrics":[{name,kind,value,count?}, ...]} sorted by name.
type JSONSink struct {
	W io.Writer
	// Indent, when non-empty, pretty-prints with that indentation.
	Indent string
}

type jsonSnapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Export implements Sink.
func (s JSONSink) Export(snap Snapshot) error {
	doc := jsonSnapshot{Metrics: snap}
	if doc.Metrics == nil {
		doc.Metrics = Snapshot{}
	}
	enc := json.NewEncoder(s.W)
	if s.Indent != "" {
		enc.SetIndent("", s.Indent)
	}
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: export json: %w", err)
	}
	return nil
}

// CSVSink writes snapshots as "name,kind,value,count" rows with a header,
// sorted by name. Names never contain commas (they are dotted
// identifiers), so no quoting is needed.
type CSVSink struct {
	W io.Writer
}

// Export implements Sink.
func (s CSVSink) Export(snap Snapshot) error {
	var b strings.Builder
	b.WriteString("name,kind,value,count\n")
	for _, m := range snap {
		b.WriteString(m.Name)
		b.WriteByte(',')
		b.WriteString(m.Kind)
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(m.Value, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(m.Count, 10))
		b.WriteByte('\n')
	}
	if _, err := io.WriteString(s.W, b.String()); err != nil {
		return fmt.Errorf("obs: export csv: %w", err)
	}
	return nil
}

// ExpvarSink publishes snapshots under one expvar.Map, so a process
// serving expvar (net/http/pprof style) exposes SWORD's counters live.
// Timer metrics publish both <name>.ns and <name>.count entries.
type ExpvarSink struct {
	m *expvar.Map
}

// NewExpvarSink publishes (or adopts, if already published) an expvar.Map
// under name and returns a sink writing into it.
func NewExpvarSink(name string) (*ExpvarSink, error) {
	if v := expvar.Get(name); v != nil {
		m, ok := v.(*expvar.Map)
		if !ok {
			return nil, fmt.Errorf("obs: expvar %q already published as %T", name, v)
		}
		return &ExpvarSink{m: m}, nil
	}
	return &ExpvarSink{m: expvar.NewMap(name)}, nil
}

// Export implements Sink.
func (s *ExpvarSink) Export(snap Snapshot) error {
	for _, m := range snap {
		switch m.Kind {
		case KindTimer:
			setInt(s.m, m.Name+".ns", m.Value)
			setInt(s.m, m.Name+".count", int64(m.Count))
		default:
			setInt(s.m, m.Name, m.Value)
		}
	}
	return nil
}

func setInt(m *expvar.Map, key string, v int64) {
	iv, ok := m.Get(key).(*expvar.Int)
	if !ok {
		iv = new(expvar.Int)
		m.Set(key, iv)
	}
	iv.Set(v)
}

// WriteFile exports the snapshot to path, choosing the format by
// extension: ".csv" writes CSV, anything else indented JSON. This backs
// the CLIs' -metrics-out flags.
func WriteFile(path string, snap Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	var sink Sink
	if strings.HasSuffix(path, ".csv") {
		sink = CSVSink{W: f}
	} else {
		sink = JSONSink{W: f, Indent: "  "}
	}
	if err := sink.Export(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}
