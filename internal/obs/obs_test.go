package obs

import (
	"strings"
	"testing"
	"time"
)

// fixture builds a registry with deterministic values so the export shape
// is golden-testable.
func fixture() *Metrics {
	m := New()
	m.Counter("rt.events").Add(25000)
	m.Counter("rt.flushes").Add(4)
	m.Counter("core.solver_calls").Add(17)
	m.Gauge("core.tree_nodes_peak").SetMax(1200)
	m.Timer("core.phase.trees").Observe(1500 * time.Microsecond)
	m.Timer("core.phase.trees").Observe(500 * time.Microsecond)
	return m
}

func TestJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := (JSONSink{W: &b}).Export(fixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `{"metrics":[` +
		`{"name":"core.phase.trees","kind":"timer","value":2000000,"count":2},` +
		`{"name":"core.solver_calls","kind":"counter","value":17},` +
		`{"name":"core.tree_nodes_peak","kind":"gauge","value":1200},` +
		`{"name":"rt.events","kind":"counter","value":25000},` +
		`{"name":"rt.flushes","kind":"counter","value":4}]}` + "\n"
	if b.String() != want {
		t.Fatalf("json export:\n got: %s\nwant: %s", b.String(), want)
	}
}

func TestCSVGolden(t *testing.T) {
	var b strings.Builder
	if err := (CSVSink{W: &b}).Export(fixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "name,kind,value,count\n" +
		"core.phase.trees,timer,2000000,2\n" +
		"core.solver_calls,counter,17,0\n" +
		"core.tree_nodes_peak,gauge,1200,0\n" +
		"rt.events,counter,25000,0\n" +
		"rt.flushes,counter,4,0\n"
	if b.String() != want {
		t.Fatalf("csv export:\n got: %s\nwant: %s", b.String(), want)
	}
}

func TestEmptySnapshotExports(t *testing.T) {
	var b strings.Builder
	if err := (JSONSink{W: &b}).Export(New().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "{\"metrics\":[]}\n"; got != want {
		t.Fatalf("empty json = %q, want %q", got, want)
	}
}

func TestSnapshotLookups(t *testing.T) {
	s := fixture().Snapshot()
	if v := s.Value("rt.events"); v != 25000 {
		t.Fatalf("Value(rt.events) = %d", v)
	}
	if d := s.Duration("core.phase.trees"); d != 2*time.Millisecond {
		t.Fatalf("Duration(core.phase.trees) = %v", d)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get on absent name succeeded")
	}
	m, ok := s.Get("core.phase.trees")
	if !ok || m.Kind != KindTimer || m.Count != 2 {
		t.Fatalf("Get(core.phase.trees) = %+v, %v", m, ok)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var m *Metrics
	// Every instrument from a nil registry must be callable and inert.
	c := m.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := m.Gauge("y")
	g.Set(5)
	g.SetMax(9)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	tm := m.Timer("z")
	tm.Observe(time.Second)
	if tm.Total() != 0 || tm.Count() != 0 {
		t.Fatal("nil timer accumulated")
	}
	if m.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestGaugeSetMaxIsHighWater(t *testing.T) {
	var g Gauge
	g.SetMax(10)
	g.SetMax(3)
	if g.Load() != 10 {
		t.Fatalf("gauge dropped below high water: %d", g.Load())
	}
	g.SetMax(42)
	if g.Load() != 42 {
		t.Fatalf("gauge did not rise: %d", g.Load())
	}
}

func TestHandlesAreStable(t *testing.T) {
	m := New()
	a, b := m.Counter("same"), m.Counter("same")
	if a != b {
		t.Fatal("repeated Counter lookups returned distinct instruments")
	}
	a.Add(2)
	if b.Load() != 2 {
		t.Fatal("instrument state not shared between handles")
	}
}

func TestExpvarSink(t *testing.T) {
	sink, err := NewExpvarSink("sword-test-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Export(fixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Re-publishing under the same name must adopt the existing map.
	again, err := NewExpvarSink("sword-test-metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := again.Export(fixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := sink.m.Get("rt.events").String(); got != "25000" {
		t.Fatalf("expvar rt.events = %s", got)
	}
	if got := sink.m.Get("core.phase.trees.count").String(); got != "2" {
		t.Fatalf("expvar timer count = %s", got)
	}
}
