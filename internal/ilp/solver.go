package ilp

import "fmt"

// A small exact integer linear feasibility solver in the style the paper
// delegates to GNU GLPK ("any other solver with similar capabilities could
// be employed"). The production path uses the closed-form gcd decision in
// Intersect; this solver expresses the same conjunction of constraints
// literally — Δ·x + b + s = a with box bounds, Section III-B — and decides
// it by branch and bound with interval propagation. The test suite
// cross-checks the two against each other and against brute force.

// Rel is a constraint relation.
type Rel int

// Supported relations.
const (
	Eq Rel = iota // Σ coef·x = rhs
	Le            // Σ coef·x ≤ rhs
)

// Var is an integer variable with inclusive bounds.
type Var struct {
	Lo, Hi int64
}

// Constraint is a linear constraint over the system's variables.
type Constraint struct {
	Coefs []int64 // one per variable; missing entries are zero
	Rel   Rel
	RHS   int64
}

// System is a conjunction of linear constraints over bounded integers.
type System struct {
	Vars []Var
	Cons []Constraint
}

// Feasible decides the system, returning a witness assignment when
// satisfiable. It panics if a constraint names more coefficients than
// variables. The search is exact: branch and bound over variable domains
// with per-constraint interval pruning.
func (s System) Feasible() ([]int64, bool) {
	for _, c := range s.Cons {
		if len(c.Coefs) > len(s.Vars) {
			panic(fmt.Sprintf("ilp: constraint has %d coefficients for %d variables", len(c.Coefs), len(s.Vars)))
		}
	}
	// Divisibility pre-check: an equality whose coefficient gcd does not
	// divide the right-hand side is infeasible regardless of bounds (this
	// is what the production gcd path decides in closed form).
	for _, c := range s.Cons {
		if c.Rel != Eq {
			continue
		}
		g := int64(0)
		for _, co := range c.Coefs {
			g, _, _ = extGCD(g, co)
		}
		if g != 0 && c.RHS%g != 0 {
			return nil, false
		}
	}
	lo := make([]int64, len(s.Vars))
	hi := make([]int64, len(s.Vars))
	for i, v := range s.Vars {
		if v.Lo > v.Hi {
			return nil, false
		}
		lo[i], hi[i] = v.Lo, v.Hi
	}
	assign := make([]int64, len(s.Vars))
	if s.search(lo, hi, assign, 0) {
		return assign, true
	}
	return nil, false
}

// residualRange returns the min and max of Σ coef·x over the given boxes.
func residualRange(coefs []int64, lo, hi []int64) (int64, int64) {
	var mn, mx int64
	for i, c := range coefs {
		switch {
		case c > 0:
			mn += c * lo[i]
			mx += c * hi[i]
		case c < 0:
			mn += c * hi[i]
			mx += c * lo[i]
		}
	}
	return mn, mx
}

// prune reports whether any constraint is already unsatisfiable over the
// current boxes.
func (s System) prune(lo, hi []int64) bool {
	for _, c := range s.Cons {
		mn, mx := residualRange(c.Coefs, lo, hi)
		switch c.Rel {
		case Eq:
			if c.RHS < mn || c.RHS > mx {
				return true
			}
		case Le:
			if mn > c.RHS {
				return true
			}
		}
	}
	return false
}

func (s System) search(lo, hi, assign []int64, depth int) bool {
	if s.prune(lo, hi) {
		return false
	}
	// Pick the first unfixed variable.
	idx := -1
	for i := range lo {
		if lo[i] < hi[i] {
			idx = i
			break
		}
	}
	if idx < 0 {
		for i := range lo {
			assign[i] = lo[i]
		}
		return !s.prune(lo, hi)
	}
	// Branch by bisection: better pruning on wide domains than value
	// enumeration.
	mid := lo[idx] + (hi[idx]-lo[idx])/2
	saveLo, saveHi := lo[idx], hi[idx]
	hi[idx] = mid
	if s.search(lo, hi, assign, depth+1) {
		hi[idx] = saveHi
		return true
	}
	hi[idx] = saveHi
	lo[idx] = mid + 1
	ok := s.search(lo, hi, assign, depth+1)
	lo[idx] = saveLo
	return ok
}

// IntersectSystem builds the paper's Section III-B constraint system for
// two progressions: variables x1, s1, x2, s2 with
//
//	Δ1·x1 + s1 − Δ2·x2 − s2 = b2 − b1
//
// satisfiable exactly when the progressions share a byte.
func IntersectSystem(p1, p2 Progression) System {
	p1, p2 = p1.normalize(), p2.normalize()
	return System{
		Vars: []Var{
			{0, int64(p1.Count)},
			{0, int64(p1.Width) - 1},
			{0, int64(p2.Count)},
			{0, int64(p2.Width) - 1},
		},
		Cons: []Constraint{{
			Coefs: []int64{int64(p1.Stride), 1, -int64(p2.Stride), -1},
			Rel:   Eq,
			RHS:   int64(p2.Base) - int64(p1.Base),
		}},
	}
}
