package ilp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteIntersect is the reference oracle: enumerate every byte of a and
// test membership in b.
func bruteIntersect(a, b Progression) (uint64, bool) {
	a, b = a.normalize(), b.normalize()
	for x := uint64(0); x <= a.Count; x++ {
		for s := uint64(0); s < a.Width; s++ {
			addr := a.Base + x*a.Stride + s
			if b.Contains(addr) {
				return addr, true
			}
		}
	}
	return 0, false
}

func TestPaperExample(t *testing.T) {
	// Section III-B: T0 accesses 8·x+10, T1 accesses 8·x+14, x ∈ [0,4],
	// width 4. The byte windows [10,13],[18,21],... and [14,17],[22,25],...
	// never overlap.
	t0 := Progression{Base: 10, Stride: 8, Count: 4, Width: 4}
	t1 := Progression{Base: 14, Stride: 8, Count: 4, Width: 4}
	if _, ok := Intersect(t0, t1); ok {
		t.Fatal("paper example intervals must be disjoint")
	}
	// Shift T1 by 2: windows [12,15] overlap [10,13].
	t1b := Progression{Base: 12, Stride: 8, Count: 4, Width: 4}
	addr, ok := Intersect(t0, t1b)
	if !ok {
		t.Fatal("shifted intervals must overlap")
	}
	if !t0.Contains(addr) || !t1b.Contains(addr) {
		t.Fatalf("witness %d not in both progressions", addr)
	}
}

func TestIntervalTreeFigure(t *testing.T) {
	// Figure 4: T0 covers [10,50] stride 8, T1 covers [14,54] stride 8,
	// both width 4: interleaved, no common byte despite overlapping ranges.
	t0 := Progression{Base: 10, Stride: 8, Count: 5, Width: 4}
	t1 := Progression{Base: 14, Stride: 8, Count: 5, Width: 4}
	if _, ok := Intersect(t0, t1); ok {
		t.Fatal("interleaved strided intervals must not intersect")
	}
}

func TestSingleAccesses(t *testing.T) {
	a := Progression{Base: 100, Width: 8}
	b := Progression{Base: 104, Width: 8}
	addr, ok := Intersect(a, b)
	if !ok || addr != 104 {
		t.Fatalf("overlapping words: addr=%d ok=%v", addr, ok)
	}
	c := Progression{Base: 108, Width: 8}
	if _, ok := Intersect(a, c); ok {
		t.Fatal("adjacent words must not intersect")
	}
	if _, ok := Intersect(a, a); !ok {
		t.Fatal("identical single accesses must intersect")
	}
}

func TestPartialWordOverlap(t *testing.T) {
	// A 1-byte write into the middle of an 8-byte read.
	word := Progression{Base: 0x1000, Width: 8}
	byteW := Progression{Base: 0x1003, Width: 1}
	addr, ok := Intersect(word, byteW)
	if !ok || addr != 0x1003 {
		t.Fatalf("partial word overlap: addr=%#x ok=%v", addr, ok)
	}
}

func TestStridedVsSingle(t *testing.T) {
	arr := Progression{Base: 0, Stride: 16, Count: 100, Width: 8}
	hit := Progression{Base: 16 * 37, Width: 4}
	if _, ok := Intersect(arr, hit); !ok {
		t.Fatal("element 37 must be hit")
	}
	miss := Progression{Base: 16*37 + 8, Width: 8}
	if _, ok := Intersect(arr, miss); ok {
		t.Fatal("gap between elements must not be hit")
	}
}

func TestDifferentStrides(t *testing.T) {
	// Strides 6 and 10 from bases 0 and 2: positions 0,6,12,… and
	// 2,12,22,…: both include 12.
	a := Progression{Base: 0, Stride: 6, Count: 10, Width: 1}
	b := Progression{Base: 2, Stride: 10, Count: 10, Width: 1}
	addr, ok := Intersect(a, b)
	if !ok || addr != 12 {
		t.Fatalf("addr=%d ok=%v, want 12", addr, ok)
	}
	// Bases 0 and 3 with even strides and width 1 never meet (parity).
	c := Progression{Base: 3, Stride: 10, Count: 1000, Width: 1}
	d := Progression{Base: 0, Stride: 6, Count: 1000, Width: 1}
	if _, ok := Intersect(c, d); ok {
		t.Fatal("parity-separated progressions must not intersect")
	}
}

func TestCountBoundsRespected(t *testing.T) {
	// Same line, but the boxes keep them apart: a covers 0..40, b starts
	// at 48.
	a := Progression{Base: 0, Stride: 8, Count: 5, Width: 8}
	b := Progression{Base: 48, Stride: 8, Count: 5, Width: 8}
	if _, ok := Intersect(a, b); ok {
		t.Fatal("disjoint ranges on the same lattice must not intersect")
	}
	b2 := Progression{Base: 40, Stride: 8, Count: 5, Width: 8}
	if _, ok := Intersect(a, b2); !ok {
		t.Fatal("touching ranges on the same lattice must intersect")
	}
}

func TestWidthLargerThanStride(t *testing.T) {
	// Overlapping self-strides: every byte from 0..11 covered.
	a := Progression{Base: 0, Stride: 2, Count: 4, Width: 4}
	for addr := uint64(0); addr < 12; addr++ {
		if !a.Contains(addr) {
			t.Fatalf("addr %d should be contained", addr)
		}
	}
	if a.Contains(12) {
		t.Fatal("addr 12 should not be contained")
	}
}

func TestContainsEdges(t *testing.T) {
	p := Progression{Base: 100, Stride: 8, Count: 3, Width: 4}
	cases := map[uint64]bool{
		99: false, 100: true, 103: true, 104: false,
		108: true, 111: true, 112: false,
		124: true, 127: true, 128: false, 200: false,
	}
	for addr, want := range cases {
		if got := p.Contains(addr); got != want {
			t.Errorf("Contains(%d) = %v, want %v", addr, got, want)
		}
	}
	if p.Last() != 127 {
		t.Fatalf("Last = %d, want 127", p.Last())
	}
}

func randProgression(r *rand.Rand) Progression {
	return Progression{
		Base:   uint64(r.Intn(200)),
		Stride: uint64(r.Intn(12)),
		Count:  uint64(r.Intn(20)),
		Width:  uint64(1 + r.Intn(8)),
	}
}

// TestQuickAgainstBruteForce cross-checks the gcd solver against byte
// enumeration across random progressions, including degenerate strides.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randProgression(r), randProgression(r)
		wantAddr, want := bruteIntersect(a, b)
		gotAddr, got := Intersect(a, b)
		if got != want {
			t.Logf("a=%+v b=%+v brute=(%d,%v) got=(%d,%v)", a, b, wantAddr, want, gotAddr, got)
			return false
		}
		if got && (!a.Contains(gotAddr) || !b.Contains(gotAddr)) {
			t.Logf("witness %d not contained; a=%+v b=%+v", gotAddr, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSymmetric: Intersect must be symmetric in its arguments.
func TestQuickSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randProgression(r), randProgression(r)
		_, ab := Intersect(a, b)
		_, ba := Intersect(b, a)
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelfIntersect: every non-empty progression intersects itself.
func TestQuickSelfIntersect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randProgression(r)
		_, ok := Intersect(a, a)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValues(t *testing.T) {
	// Realistic collector magnitudes: multi-gigabyte bases, million-element
	// arrays.
	a := Progression{Base: 0x4000_0000, Stride: 8, Count: 1 << 20, Width: 8}
	b := Progression{Base: 0x4000_0000 + 8*(1<<19) + 4, Width: 4}
	if _, ok := Intersect(a, b); !ok {
		t.Fatal("large-value hit missed")
	}
	c := Progression{Base: 0x4000_0000 + 8*(1<<21), Width: 8}
	if _, ok := Intersect(a, c); ok {
		t.Fatal("large-value miss reported as hit")
	}
	// Two million-element sweeps with co-prime strides intersecting far out.
	d := Progression{Base: 0x4000_0000, Stride: 24, Count: 1 << 20, Width: 8}
	e := Progression{Base: 0x4000_0004, Stride: 40, Count: 1 << 20, Width: 8}
	addr, ok := Intersect(d, e)
	if !ok {
		t.Fatal("co-prime strides with shared lattice point missed")
	}
	if !d.Contains(addr) || !e.Contains(addr) {
		t.Fatalf("witness %#x not contained in both", addr)
	}
}

func TestExtGCD(t *testing.T) {
	cases := []struct{ a, b int64 }{
		{12, 18}, {-12, 18}, {12, -18}, {-12, -18}, {1, 1}, {7, 13}, {100, 0x7fffffff},
	}
	for _, c := range cases {
		g, u, v := extGCD(c.a, c.b)
		if g <= 0 {
			t.Errorf("extGCD(%d,%d): non-positive g=%d", c.a, c.b, g)
		}
		if c.a*u+c.b*v != g {
			t.Errorf("extGCD(%d,%d): %d·%d+%d·%d != %d", c.a, c.b, c.a, u, c.b, v, g)
		}
		if c.a%g != 0 || c.b%g != 0 {
			t.Errorf("extGCD(%d,%d): %d does not divide both", c.a, c.b, g)
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	for _, c := range []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0},
	} {
		if got := floorDiv(c.a, c.b); got != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := ceilDiv(c.a, c.b); got != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func BenchmarkIntersectHit(b *testing.B) {
	x := Progression{Base: 0x4000_0000, Stride: 24, Count: 1 << 20, Width: 8}
	y := Progression{Base: 0x4000_0004, Stride: 40, Count: 1 << 20, Width: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

func BenchmarkIntersectMiss(b *testing.B) {
	x := Progression{Base: 10, Stride: 8, Count: 1 << 20, Width: 4}
	y := Progression{Base: 14, Stride: 8, Count: 1 << 20, Width: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

// TestResidueMatchesWindowOracle pits the residue-interval Intersect
// against the original per-offset window loop on randomized
// progressions: verdict AND witness must be identical, so memo keys and
// race reports stay byte-stable across the rewrite.
func TestResidueMatchesWindowOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randProgression(r), randProgression(r)
		// Occasionally force degenerate and wide shapes the generator
		// under-samples.
		switch r.Intn(5) {
		case 0:
			a.Stride, a.Count = 0, 0
		case 1:
			b.Stride, b.Count = 0, 0
		case 2:
			a.Width, b.Width = 64, 64
		}
		wantAddr, want := intersectWindow(a, b)
		gotAddr, got := Intersect(a, b)
		if got != want || gotAddr != wantAddr {
			t.Logf("a=%+v b=%+v oracle=(%d,%v) residue=(%d,%v)",
				a, b, wantAddr, want, gotAddr, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestResidueMatchesOracleLarge covers collector-scale magnitudes where
// the window oracle is still cheap enough to run.
func TestResidueMatchesOracleLarge(t *testing.T) {
	cases := [][2]Progression{
		{{Base: 0x4000_0000, Stride: 8, Count: 1 << 20, Width: 8},
			{Base: 0x4000_0000 + 8*(1<<19) + 4, Width: 4}},
		{{Base: 0x4000_0000, Stride: 24, Count: 1 << 20, Width: 8},
			{Base: 0x4000_0004, Stride: 40, Count: 1 << 20, Width: 8}},
		{{Base: 1 << 40, Stride: 4096, Count: 1 << 16, Width: 128},
			{Base: (1 << 40) + 100, Stride: 4000, Count: 1 << 16, Width: 128}},
		{{Base: 0, Stride: 7, Count: 100, Width: 1},
			{Base: 3, Stride: 11, Count: 100, Width: 1}},
	}
	for i, c := range cases {
		for _, pair := range [][2]Progression{c, {c[1], c[0]}} {
			wantAddr, want := intersectWindow(pair[0], pair[1])
			gotAddr, got := Intersect(pair[0], pair[1])
			if got != want || gotAddr != wantAddr {
				t.Fatalf("case %d: oracle=(%#x,%v) residue=(%#x,%v)",
					i, wantAddr, want, gotAddr, got)
			}
		}
	}
}

// BenchmarkIntersectWide measures the case the residue walk targets: wide
// access windows over strided progressions, where the old loop ran one
// gcd solve per byte offset.
func BenchmarkIntersectWide(b *testing.B) {
	p := Progression{Base: 0, Stride: 128, Count: 1 << 16, Width: 64}
	q := Progression{Base: 31, Stride: 96, Count: 1 << 16, Width: 64}
	b.Run("residue", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Intersect(p, q)
		}
	})
	b.Run("window-oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			intersectWindow(p, q)
		}
	})
}
