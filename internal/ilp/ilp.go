// Package ilp decides whether two strided access intervals share a memory
// address, the constraint-solving step of SWORD's offline analysis.
//
// An interval summarizes accesses {b + x·Δ + s | 0 ≤ x ≤ n, 0 ≤ s < w}:
// base address b, stride Δ, repetition count n (so n+1 access positions)
// and access width w. Two intervals of threads T_i and T_j conflict when
// the conjunction of their two constraints is satisfiable — the paper
// solves this with GNU GLPK; since the system is a two-variable linear
// Diophantine problem with box bounds, this package decides it exactly
// with a single extended-Euclidean solve: only the congruence class
// c ≡ 0 (mod gcd(Δa, Δb)) of byte-offset targets can be satisfiable, so
// Intersect walks that residue interval with one precomputed Bézout pair
// instead of solving per candidate offset. The original
// solve-per-offset window loop is retained as an in-package test oracle,
// and tests additionally cross-check against a tiny generic
// branch-and-bound integer feasibility solver (the "any other solver
// with similar capabilities" of the paper).
package ilp

import "fmt"

// Progression describes one strided interval's address set.
type Progression struct {
	Base   uint64 // first access address
	Stride uint64 // distance between consecutive access positions; 0 for a single position
	Count  uint64 // number of access positions minus one (x ranges over 0..Count)
	Width  uint64 // bytes touched at each position (≥ 1)
}

// normalize collapses degenerate strides: Count == 0 or Stride == 0 pin
// x to zero.
func (p Progression) normalize() Progression {
	if p.Width == 0 {
		p.Width = 1
	}
	if p.Stride == 0 {
		p.Count = 0
	}
	if p.Count == 0 {
		p.Stride = 0
	}
	return p
}

// Normalized returns the canonical form of the progression: Width at
// least 1, and Stride/Count zeroed together so degenerate shapes compare
// equal. Callers memoizing Intersect decisions must key on this form —
// Intersect normalizes internally, so distinct representations of the
// same address set always produce the same verdict.
func (p Progression) Normalized() Progression { return p.normalize() }

// Last returns the last byte the progression touches.
func (p Progression) Last() uint64 {
	p = p.normalize()
	return p.Base + p.Stride*p.Count + p.Width - 1
}

// Contains reports whether the progression touches address a.
func (p Progression) Contains(a uint64) bool {
	p = p.normalize()
	if a < p.Base || a > p.Last() {
		return false
	}
	if p.Stride == 0 {
		return a-p.Base < p.Width
	}
	// The latest position starting at or before a covers furthest right,
	// so checking it alone is exact even when Width > Stride.
	off := a - p.Base
	x := off / p.Stride
	if x > p.Count {
		x = p.Count
	}
	return off-x*p.Stride < p.Width
}

// Intersect reports whether the two progressions share any byte, returning
// a witness address when they do. It is exact: no over- or
// under-approximation.
//
// Positions are pa = a.Base + x·Δa (0 ≤ x ≤ a.Count) and
// pb = b.Base + y·Δb (0 ≤ y ≤ b.Count); bytes overlap iff
// d = pb − pa ∈ [−(b.Width−1), a.Width−1]. Each admissible d yields one
// linear Diophantine equation y·Δb − x·Δa = d + (a.Base − b.Base) =: c,
// solvable only when g = gcd(Δa, Δb) divides c — so instead of running an
// extended-GCD solve per d (up to widthA+widthB−1 of them, the original
// implementation kept below as the test oracle), Intersect computes one
// Bézout pair and walks only the multiples of g inside the c-window in
// ascending order, deciding each candidate's box feasibility with integer
// interval arithmetic. The first feasible candidate reproduces the
// oracle's witness exactly. Degenerate strides decide in O(1).
func Intersect(a, b Progression) (uint64, bool) {
	a, b = a.normalize(), b.normalize()
	// Fast reject on bounding boxes.
	if a.Last() < b.Base || b.Last() < a.Base {
		return 0, false
	}
	// Window of admissible position differences, shifted into c-space.
	baseDiff := int64(a.Base) - int64(b.Base)
	cLo := -int64(b.Width-1) + baseDiff
	cHi := int64(a.Width-1) + baseDiff
	sa, sb := int64(a.Stride), int64(b.Stride)
	witness := func(x, y int64) (uint64, bool) {
		pa := a.Base + uint64(x)*a.Stride
		pb := b.Base + uint64(y)*b.Stride
		// Witness byte: overlap of [pa, pa+wa) and [pb, pb+wb).
		if pb > pa {
			return pb, true
		}
		return pa, true
	}
	switch {
	case sa == 0 && sb == 0:
		// Single positions: the only solvable c is 0.
		if cLo <= 0 && 0 <= cHi {
			return witness(0, 0)
		}
		return 0, false
	case sa == 0:
		// c = y·Δb with y ∈ [0, b.Count]: first multiple of Δb in the
		// window intersected with [0, Δb·Count].
		c, ok := firstMultipleIn(sb, maxInt(cLo, 0), minInt(cHi, sb*int64(b.Count)))
		if !ok {
			return 0, false
		}
		return witness(0, c/sb)
	case sb == 0:
		// c = −x·Δa with x ∈ [0, a.Count]: c ∈ [−Δa·Count, 0].
		c, ok := firstMultipleIn(sa, maxInt(cLo, -sa*int64(a.Count)), minInt(cHi, 0))
		if !ok {
			return 0, false
		}
		return witness(-c/sa, 0)
	}
	// General case: y·Δb − x·Δa = c has solutions only when g | c.
	// One Bézout pair serves every candidate in the congruence class.
	aa, bb := -sa, sb
	g, u, v := extGCD(aa, bb)
	bg := bb / g
	ag := aa / g
	X, Y := int64(a.Count), int64(b.Count)
	first, ok := firstMultipleIn(g, cLo, cHi)
	if !ok {
		return 0, false
	}
	for c := first; c <= cHi; c += g {
		m := c / g
		// Particular solution x0,y0; general x = x0 + bg·k, y = y0 − ag·k.
		x0 := u * m
		y0 := v * m
		kLo, kHi := int64(minInt64), int64(maxInt64)
		if !clampRange(&kLo, &kHi, bg, -x0, X-x0) {
			continue
		}
		if !clampRange(&kLo, &kHi, -ag, -y0, Y-y0) {
			continue
		}
		if kLo > kHi {
			continue
		}
		x := x0 + bg*kLo
		y := y0 - ag*kLo
		if x < 0 || x > X || y < 0 || y > Y || aa*x+bb*y != c {
			// Overflow in intermediate arithmetic would surface here; the
			// address space and counts used by the collector keep all
			// values far below 2^62, so this is a genuine internal error.
			panic(fmt.Sprintf("ilp: inconsistent solution x=%d y=%d for %d·x+%d·y=%d", x, y, aa, bb, c))
		}
		return witness(x, y)
	}
	return 0, false
}

// intersectWindow is the original per-d window implementation of
// Intersect — up to widthA+widthB−1 extended-GCD solves per call. It is
// retained purely as the differential oracle for the residue-interval
// fast path; both must agree on verdict and witness for every input.
func intersectWindow(a, b Progression) (uint64, bool) {
	a, b = a.normalize(), b.normalize()
	if a.Last() < b.Base || b.Last() < a.Base {
		return 0, false
	}
	lo := -int64(b.Width - 1)
	hi := int64(a.Width - 1)
	baseDiff := int64(a.Base) - int64(b.Base)
	for d := lo; d <= hi; d++ {
		c := d + baseDiff
		x, y, ok := solveAxByC(-int64(a.Stride), int64(b.Stride), c, int64(a.Count), int64(b.Count))
		if ok {
			pa := a.Base + uint64(x)*a.Stride
			pb := b.Base + uint64(y)*b.Stride
			w := pa
			if pb > w {
				w = pb
			}
			return w, true
		}
	}
	return 0, false
}

// firstMultipleIn returns the smallest multiple of step (> 0) in
// [lo, hi], if any.
func firstMultipleIn(step, lo, hi int64) (int64, bool) {
	if lo > hi {
		return 0, false
	}
	c := ceilDiv(lo, step) * step
	if c > hi {
		return 0, false
	}
	return c, true
}

func maxInt(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// solveAxByC finds integers x ∈ [0, X], y ∈ [0, Y] with a·x + b·y = c,
// using the extended Euclidean algorithm and intersecting the solution
// line with the box. Any coefficients are accepted, including zeros.
func solveAxByC(a, b, c, X, Y int64) (int64, int64, bool) {
	switch {
	case a == 0 && b == 0:
		if c == 0 {
			return 0, 0, true
		}
		return 0, 0, false
	case a == 0:
		if c%b != 0 {
			return 0, 0, false
		}
		y := c / b
		if y < 0 || y > Y {
			return 0, 0, false
		}
		return 0, y, true
	case b == 0:
		if c%a != 0 {
			return 0, 0, false
		}
		x := c / a
		if x < 0 || x > X {
			return 0, 0, false
		}
		return x, 0, true
	}
	g, u, v := extGCD(a, b)
	if c%g != 0 {
		return 0, 0, false
	}
	m := c / g
	// Particular solution.
	x0 := u * m
	y0 := v * m
	// General solution: x = x0 + (b/g)·k, y = y0 − (a/g)·k.
	bg := b / g
	ag := a / g
	// Intersect 0 ≤ x0 + bg·k ≤ X with 0 ≤ y0 − ag·k ≤ Y over integer k.
	kLo, kHi := int64(minInt64), int64(maxInt64)
	if !clampRange(&kLo, &kHi, bg, -x0, X-x0) { // 0−x0 ≤ bg·k ≤ X−x0
		return 0, 0, false
	}
	if !clampRange(&kLo, &kHi, -ag, -y0, Y-y0) { // 0−y0 ≤ −ag·k ≤ Y−y0
		return 0, 0, false
	}
	if kLo > kHi {
		return 0, 0, false
	}
	k := kLo
	x := x0 + bg*k
	y := y0 - ag*k
	if x < 0 || x > X || y < 0 || y > Y || a*x+b*y != c {
		// Overflow in intermediate arithmetic would surface here; the
		// address space and counts used by the collector keep all values
		// far below 2^62, so this is a genuine internal error.
		panic(fmt.Sprintf("ilp: inconsistent solution x=%d y=%d for %d·x+%d·y=%d", x, y, a, b, c))
	}
	return x, y, true
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

// clampRange intersects [lo, hi] with the k-range satisfying
// m ≤ coef·k ≤ M. coef may be negative but not zero... a zero coefficient
// turns the condition into a constant test.
func clampRange(lo, hi *int64, coef, m, M int64) bool {
	if coef == 0 {
		return m <= 0 && 0 <= M
	}
	if coef < 0 {
		coef, m, M = -coef, -M, -m
	}
	// m ≤ coef·k ≤ M with coef > 0: ceil(m/coef) ≤ k ≤ floor(M/coef).
	l := ceilDiv(m, coef)
	h := floorDiv(M, coef)
	if l > *lo {
		*lo = l
	}
	if h < *hi {
		*hi = h
	}
	return *lo <= *hi
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// extGCD returns g = gcd(|a|, |b|) > 0 and u, v with a·u + b·v = g.
func extGCD(a, b int64) (g, u, v int64) {
	oldR, r := a, b
	oldU, uu := int64(1), int64(0)
	oldV, vv := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldU, uu = uu, oldU-q*uu
		oldV, vv = vv, oldV-q*vv
	}
	if oldR < 0 {
		oldR, oldU, oldV = -oldR, -oldU, -oldV
	}
	return oldR, oldU, oldV
}
