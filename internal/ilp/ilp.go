// Package ilp decides whether two strided access intervals share a memory
// address, the constraint-solving step of SWORD's offline analysis.
//
// An interval summarizes accesses {b + x·Δ + s | 0 ≤ x ≤ n, 0 ≤ s < w}:
// base address b, stride Δ, repetition count n (so n+1 access positions)
// and access width w. Two intervals of threads T_i and T_j conflict when
// the conjunction of their two constraints is satisfiable — the paper
// solves this with GNU GLPK; since the system is a two-variable linear
// Diophantine problem with box bounds, this package decides it exactly
// with the extended Euclidean algorithm, and cross-checks against a tiny
// generic branch-and-bound integer feasibility solver (the "any other
// solver with similar capabilities" of the paper) in tests.
package ilp

import "fmt"

// Progression describes one strided interval's address set.
type Progression struct {
	Base   uint64 // first access address
	Stride uint64 // distance between consecutive access positions; 0 for a single position
	Count  uint64 // number of access positions minus one (x ranges over 0..Count)
	Width  uint64 // bytes touched at each position (≥ 1)
}

// normalize collapses degenerate strides: Count == 0 or Stride == 0 pin
// x to zero.
func (p Progression) normalize() Progression {
	if p.Width == 0 {
		p.Width = 1
	}
	if p.Stride == 0 {
		p.Count = 0
	}
	if p.Count == 0 {
		p.Stride = 0
	}
	return p
}

// Normalized returns the canonical form of the progression: Width at
// least 1, and Stride/Count zeroed together so degenerate shapes compare
// equal. Callers memoizing Intersect decisions must key on this form —
// Intersect normalizes internally, so distinct representations of the
// same address set always produce the same verdict.
func (p Progression) Normalized() Progression { return p.normalize() }

// Last returns the last byte the progression touches.
func (p Progression) Last() uint64 {
	p = p.normalize()
	return p.Base + p.Stride*p.Count + p.Width - 1
}

// Contains reports whether the progression touches address a.
func (p Progression) Contains(a uint64) bool {
	p = p.normalize()
	if a < p.Base || a > p.Last() {
		return false
	}
	if p.Stride == 0 {
		return a-p.Base < p.Width
	}
	// The latest position starting at or before a covers furthest right,
	// so checking it alone is exact even when Width > Stride.
	off := a - p.Base
	x := off / p.Stride
	if x > p.Count {
		x = p.Count
	}
	return off-x*p.Stride < p.Width
}

// Intersect reports whether the two progressions share any byte, returning
// a witness address when they do. It is exact: no over- or
// under-approximation.
func Intersect(a, b Progression) (uint64, bool) {
	a, b = a.normalize(), b.normalize()
	// Fast reject on bounding boxes.
	if a.Last() < b.Base || b.Last() < a.Base {
		return 0, false
	}
	// Positions: pa = a.Base + x·Δa (0 ≤ x ≤ a.Count),
	//            pb = b.Base + y·Δb (0 ≤ y ≤ b.Count).
	// Bytes overlap iff d = pb − pa ∈ [−(b.Width−1), a.Width−1].
	// For each target d, solve y·Δb − x·Δa = d + (a.Base − b.Base) =: c
	// with x, y in their boxes. Widths are small (≤ 128), so the loop over
	// the window is bounded and each step is an O(log) gcd solve.
	lo := -int64(b.Width - 1)
	hi := int64(a.Width - 1)
	baseDiff := int64(a.Base) - int64(b.Base)
	for d := lo; d <= hi; d++ {
		c := d + baseDiff
		x, y, ok := solveAxByC(-int64(a.Stride), int64(b.Stride), c, int64(a.Count), int64(b.Count))
		if ok {
			pa := a.Base + uint64(x)*a.Stride
			pb := b.Base + uint64(y)*b.Stride
			// Witness byte: overlap of [pa, pa+wa) and [pb, pb+wb).
			w := pa
			if pb > w {
				w = pb
			}
			return w, true
		}
	}
	return 0, false
}

// solveAxByC finds integers x ∈ [0, X], y ∈ [0, Y] with a·x + b·y = c,
// using the extended Euclidean algorithm and intersecting the solution
// line with the box. Any coefficients are accepted, including zeros.
func solveAxByC(a, b, c, X, Y int64) (int64, int64, bool) {
	switch {
	case a == 0 && b == 0:
		if c == 0 {
			return 0, 0, true
		}
		return 0, 0, false
	case a == 0:
		if c%b != 0 {
			return 0, 0, false
		}
		y := c / b
		if y < 0 || y > Y {
			return 0, 0, false
		}
		return 0, y, true
	case b == 0:
		if c%a != 0 {
			return 0, 0, false
		}
		x := c / a
		if x < 0 || x > X {
			return 0, 0, false
		}
		return x, 0, true
	}
	g, u, v := extGCD(a, b)
	if c%g != 0 {
		return 0, 0, false
	}
	m := c / g
	// Particular solution.
	x0 := u * m
	y0 := v * m
	// General solution: x = x0 + (b/g)·k, y = y0 − (a/g)·k.
	bg := b / g
	ag := a / g
	// Intersect 0 ≤ x0 + bg·k ≤ X with 0 ≤ y0 − ag·k ≤ Y over integer k.
	kLo, kHi := int64(minInt64), int64(maxInt64)
	if !clampRange(&kLo, &kHi, bg, -x0, X-x0) { // 0−x0 ≤ bg·k ≤ X−x0
		return 0, 0, false
	}
	if !clampRange(&kLo, &kHi, -ag, -y0, Y-y0) { // 0−y0 ≤ −ag·k ≤ Y−y0
		return 0, 0, false
	}
	if kLo > kHi {
		return 0, 0, false
	}
	k := kLo
	x := x0 + bg*k
	y := y0 - ag*k
	if x < 0 || x > X || y < 0 || y > Y || a*x+b*y != c {
		// Overflow in intermediate arithmetic would surface here; the
		// address space and counts used by the collector keep all values
		// far below 2^62, so this is a genuine internal error.
		panic(fmt.Sprintf("ilp: inconsistent solution x=%d y=%d for %d·x+%d·y=%d", x, y, a, b, c))
	}
	return x, y, true
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

// clampRange intersects [lo, hi] with the k-range satisfying
// m ≤ coef·k ≤ M. coef may be negative but not zero... a zero coefficient
// turns the condition into a constant test.
func clampRange(lo, hi *int64, coef, m, M int64) bool {
	if coef == 0 {
		return m <= 0 && 0 <= M
	}
	if coef < 0 {
		coef, m, M = -coef, -M, -m
	}
	// m ≤ coef·k ≤ M with coef > 0: ceil(m/coef) ≤ k ≤ floor(M/coef).
	l := ceilDiv(m, coef)
	h := floorDiv(M, coef)
	if l > *lo {
		*lo = l
	}
	if h < *hi {
		*hi = h
	}
	return *lo <= *hi
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// extGCD returns g = gcd(|a|, |b|) > 0 and u, v with a·u + b·v = g.
func extGCD(a, b int64) (g, u, v int64) {
	oldR, r := a, b
	oldU, uu := int64(1), int64(0)
	oldV, vv := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldU, uu = uu, oldU-q*uu
		oldV, vv = vv, oldV-q*vv
	}
	if oldR < 0 {
		oldR, oldU, oldV = -oldR, -oldU, -oldV
	}
	return oldR, oldU, oldV
}
