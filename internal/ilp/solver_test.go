package ilp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolverSimpleSystems(t *testing.T) {
	// x + y = 5, 0<=x<=3, 0<=y<=3.
	sys := System{
		Vars: []Var{{0, 3}, {0, 3}},
		Cons: []Constraint{{Coefs: []int64{1, 1}, Rel: Eq, RHS: 5}},
	}
	a, ok := sys.Feasible()
	if !ok || a[0]+a[1] != 5 {
		t.Fatalf("x+y=5: %v %v", a, ok)
	}
	// x + y = 7 is out of reach.
	sys.Cons[0].RHS = 7
	if _, ok := sys.Feasible(); ok {
		t.Fatal("x+y=7 satisfiable within [0,3]^2")
	}
}

func TestSolverParity(t *testing.T) {
	// 2x - 2y = 1 has no integer solution; divisibility pruning must
	// decide it instantly even over wide bounds.
	sys := System{
		Vars: []Var{{0, 1 << 40}, {0, 1 << 40}},
		Cons: []Constraint{{Coefs: []int64{2, -2}, Rel: Eq, RHS: 1}},
	}
	if _, ok := sys.Feasible(); ok {
		t.Fatal("parity-infeasible system satisfied")
	}
}

func TestSolverInequalities(t *testing.T) {
	// x <= 4, -x <= -2 (i.e. x >= 2), x = 3k via equality with helper var.
	sys := System{
		Vars: []Var{{0, 10}, {0, 3}},
		Cons: []Constraint{
			{Coefs: []int64{1}, Rel: Le, RHS: 4},
			{Coefs: []int64{-1}, Rel: Le, RHS: -2},
			{Coefs: []int64{1, -3}, Rel: Eq, RHS: 0}, // x = 3y
		},
	}
	a, ok := sys.Feasible()
	if !ok || a[0] != 3 || a[1] != 1 {
		t.Fatalf("expected x=3,y=1; got %v %v", a, ok)
	}
}

func TestSolverEmptyDomain(t *testing.T) {
	sys := System{Vars: []Var{{5, 2}}}
	if _, ok := sys.Feasible(); ok {
		t.Fatal("inverted bounds satisfiable")
	}
}

func TestSolverNoConstraints(t *testing.T) {
	sys := System{Vars: []Var{{-3, 3}, {7, 7}}}
	a, ok := sys.Feasible()
	if !ok || a[1] != 7 {
		t.Fatalf("unconstrained: %v %v", a, ok)
	}
}

// TestIntersectSystemMatchesGCDSolver: the literal Section III-B system
// decided by branch and bound must agree with the closed-form gcd decision
// on random progressions — the "any other solver" equivalence.
func TestIntersectSystemMatchesGCDSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Progression{
			Base:   uint64(r.Intn(500)),
			Stride: uint64(r.Intn(16)),
			Count:  uint64(r.Intn(64)),
			Width:  uint64(1 + r.Intn(8)),
		}
		b := Progression{
			Base:   uint64(r.Intn(500)),
			Stride: uint64(r.Intn(16)),
			Count:  uint64(r.Intn(64)),
			Width:  uint64(1 + r.Intn(8)),
		}
		_, gcdOK := Intersect(a, b)
		assign, bnbOK := IntersectSystem(a, b).Feasible()
		if gcdOK != bnbOK {
			t.Logf("disagreement on %+v vs %+v: gcd=%v bnb=%v", a, b, gcdOK, bnbOK)
			return false
		}
		if bnbOK {
			// The witness must name a genuinely shared byte.
			a, b := a.normalize(), b.normalize()
			addr1 := a.Base + uint64(assign[0])*a.Stride + uint64(assign[1])
			addr2 := b.Base + uint64(assign[2])*b.Stride + uint64(assign[3])
			if addr1 != addr2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	System{
		Vars: []Var{{0, 1}},
		Cons: []Constraint{{Coefs: []int64{1, 2}, Rel: Eq, RHS: 0}},
	}.Feasible()
}

func BenchmarkSolverIntersect(b *testing.B) {
	p1 := Progression{Base: 10, Stride: 8, Count: 1000, Width: 4}
	p2 := Progression{Base: 14, Stride: 8, Count: 1000, Width: 4}
	sys := IntersectSystem(p1, p2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys.Feasible()
	}
}
