#!/bin/sh
# stream-smoke: end-to-end check of live (streaming) race detection.
# Starts a live-flush collection of a racy workload in the background,
# attaches swordwatch to the growing trace directory while it is being
# written, and asserts the live watcher's final race set matches what a
# post-mortem swordoffline pass reports on the completed trace. Run via
# `make stream-smoke` (part of `make check`).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d "${TMPDIR:-/tmp}/sword-stream-smoke.XXXXXX")
runner=
trap 'rm -rf "$tmp"; [ -n "$runner" ] && kill "$runner" 2>/dev/null || true' EXIT

$GO build -o "$tmp/swordrun" ./cmd/swordrun
$GO build -o "$tmp/swordwatch" ./cmd/swordwatch
$GO build -o "$tmp/swordoffline" ./cmd/swordoffline

# Start the collection in the background. swordrun exits 3 when the
# workload races — expected; anything else is a real failure.
( "$tmp/swordrun" -w c_jacobi -tool sword -live-flush -logdir "$tmp/trace" >/dev/null 2>&1; \
  rc=$?; [ "$rc" -eq 3 ] || [ "$rc" -eq 0 ] || echo "$rc" >"$tmp/runner.fail" ) &
runner=$!

# Attach the watcher as soon as the trace directory exists. It tails the
# growing trace and exits once the run's end marker lands (exit 3 =
# races found live).
for _ in $(seq 1 100); do
    [ -d "$tmp/trace" ] && break
    sleep 0.05
done
[ -d "$tmp/trace" ] || { echo "stream-smoke: collection never created $tmp/trace" >&2; exit 1; }
"$tmp/swordwatch" -logdir "$tmp/trace" >"$tmp/watch.out" || [ $? -eq 3 ]

wait "$runner" || true
runner=
[ ! -f "$tmp/runner.fail" ] || {
    echo "stream-smoke: swordrun failed with exit $(cat "$tmp/runner.fail")" >&2; exit 1; }

# The post-mortem baseline on the very same trace.
"$tmp/swordoffline" -logdir "$tmp/trace" >"$tmp/offline.out" || [ $? -eq 3 ]

grep '^race:' "$tmp/watch.out" | sort >"$tmp/live.races"
grep '^race:' "$tmp/offline.out" | sort >"$tmp/offline.races"
[ -s "$tmp/live.races" ] || {
    echo "stream-smoke: live watcher found no races" >&2; cat "$tmp/watch.out" >&2; exit 1; }
if ! cmp -s "$tmp/live.races" "$tmp/offline.races"; then
    echo "stream-smoke: live race set differs from post-mortem swordoffline" >&2
    diff "$tmp/live.races" "$tmp/offline.races" >&2 || true
    exit 1
fi

n=$(wc -l <"$tmp/live.races")
echo "stream-smoke: ok ($n race(s) agree between the live watcher and post-mortem analysis)"
