#!/bin/sh
# serve-smoke: end-to-end check of the always-on analysis service.
# Collects a racy workload's trace, starts swordserve, uploads the trace
# over HTTP with curl, polls the job to completion, and asserts the
# service's text report carries the same race set as single-process
# swordoffline on the same trace. Finishes with a SIGTERM drain and
# asserts the server exits cleanly. Run via `make serve-smoke` (part of
# `make check`).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d "${TMPDIR:-/tmp}/sword-serve-smoke.XXXXXX")
server=
trap 'rm -rf "$tmp"; [ -n "$server" ] && kill "$server" 2>/dev/null || true' EXIT

$GO build -o "$tmp/swordrun" ./cmd/swordrun
$GO build -o "$tmp/swordoffline" ./cmd/swordoffline
$GO build -o "$tmp/swordserve" ./cmd/swordserve

# Collect the trace. swordrun exits 3 when the workload races — expected.
"$tmp/swordrun" -w c_jacobi -tool sword -logdir "$tmp/trace" >/dev/null || [ $? -eq 3 ]

# The offline baseline. Exit 3 = races found.
"$tmp/swordoffline" -logdir "$tmp/trace" >"$tmp/single.out" || [ $? -eq 3 ]
grep '^race:' "$tmp/single.out" | sort >"$tmp/single.races"

# Start the service on an ephemeral port; it prints the bound address
# once the listener is live.
"$tmp/swordserve" -listen 127.0.0.1:0 -datadir "$tmp/data" >"$tmp/serve.out" 2>&1 &
server=$!
addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^swordserve: listening on //p' "$tmp/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: server never came up" >&2; cat "$tmp/serve.out" >&2; exit 1; }
base="http://$addr/api/v1"

# Upload every trace file as one multipart job; curl names each part
# after the file, which is exactly the layout the server requires.
set --
for f in "$tmp/trace"/sword_*; do
    set -- "$@" -F "file=@$f"
done
curl -sf -H 'X-Sword-Tenant: smoke' "$@" "$base/jobs" >"$tmp/job.json"
id=$(sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p' "$tmp/job.json")
[ -n "$id" ] || { echo "serve-smoke: upload returned no job id" >&2; cat "$tmp/job.json" >&2; exit 1; }

# Poll the job to a terminal state.
state=
for _ in $(seq 1 100); do
    state=$(curl -sf "$base/jobs/$id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    case "$state" in done|partial|failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = done ] || { echo "serve-smoke: job ended in state '$state'" >&2; curl -s "$base/jobs/$id" >&2; exit 1; }

# The service's text report must carry the offline race set.
curl -sf "$base/jobs/$id/report?format=text" >"$tmp/report.txt"
grep '^race:' "$tmp/report.txt" | sort >"$tmp/served.races"
if ! cmp -s "$tmp/single.races" "$tmp/served.races"; then
    echo "serve-smoke: service race set differs from swordoffline" >&2
    diff "$tmp/single.races" "$tmp/served.races" >&2 || true
    exit 1
fi

# SIGTERM: the server must drain and exit 0.
kill -TERM "$server"
if ! wait "$server"; then
    echo "serve-smoke: server did not drain cleanly" >&2; cat "$tmp/serve.out" >&2; exit 1
fi
server=
grep -q '^swordserve: drained$' "$tmp/serve.out" || {
    echo "serve-smoke: no drain confirmation" >&2; cat "$tmp/serve.out" >&2; exit 1; }

n=$(wc -l <"$tmp/single.races")
echo "serve-smoke: ok ($n race(s) agree between swordoffline and the service; clean drain)"
