#!/bin/sh
# dist-smoke: end-to-end check of the distributed analysis CLI. Collects
# a racy workload's trace, analyzes it three ways — single-process
# swordoffline, sworddist -local (inlining disabled so the wire really
# runs), and a real coordinator process with two worker processes over
# loopback TCP, deliberately mixed-codec (one lzss worker, one raw
# worker, so both the compressed and the fallback dialect carry live
# batches) — and asserts all three report the same race set. Run via
# `make dist-smoke` (part of `make check`).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d "${TMPDIR:-/tmp}/sword-dist-smoke.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

$GO build -o "$tmp/swordrun" ./cmd/swordrun
$GO build -o "$tmp/swordoffline" ./cmd/swordoffline
$GO build -o "$tmp/sworddist" ./cmd/sworddist

# Collect the trace. swordrun exits 3 when the workload races — expected.
"$tmp/swordrun" -w c_md -tool sword -logdir "$tmp/trace" >/dev/null || [ $? -eq 3 ]

# Reports list one race per line; the summary/timing lines differ by
# mode, so compare only the sorted race lines. Exit 3 = races found.
races() { grep '^race:' "$1" | sort; }

"$tmp/swordoffline" -logdir "$tmp/trace" >"$tmp/single.out" || [ $? -eq 3 ]
"$tmp/sworddist" -logdir "$tmp/trace" -local 2 -inline-below -1 >"$tmp/local.out" || [ $? -eq 3 ]

"$tmp/sworddist" -logdir "$tmp/trace" -serve 127.0.0.1:0 >"$tmp/serve.out" 2>&1 &
coord=$!
# The coordinator prints its bound address; poll for it.
addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^sworddist: coordinator listening on //p' "$tmp/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "dist-smoke: coordinator never came up" >&2; exit 1; }
# Mixed codecs: smoke-a negotiates the coordinator's default lzss,
# smoke-b offers nothing compressed and falls back to raw frames.
"$tmp/sworddist" -logdir "$tmp/trace" -join "$addr" -name smoke-a >/dev/null &
w1=$!
"$tmp/sworddist" -logdir "$tmp/trace" -join "$addr" -name smoke-b -wire-codec raw >/dev/null &
w2=$!
wait $coord || [ $? -eq 3 ]
# The trace is tiny: the first worker can drain the whole plan before the
# second finishes its handshake, and a worker that connects as the
# coordinator exits sees a reset. The differential below judges the
# coordinator's merged report, so late-worker exits are tolerated.
wait $w1 || true
wait $w2 || true

races "$tmp/single.out" >"$tmp/single.races"
if ! races "$tmp/local.out" | cmp -s "$tmp/single.races" -; then
    echo "dist-smoke: -local 2 race set differs from single-process" >&2
    exit 1
fi
if ! races "$tmp/serve.out" | cmp -s "$tmp/single.races" -; then
    echo "dist-smoke: -serve/-join race set differs from single-process:" >&2
    exit 1
fi
n=$(wc -l <"$tmp/single.races")
echo "dist-smoke: ok ($n race(s) agree across single-process, -local 2, and -serve + 2 workers)"
