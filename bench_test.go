// Benchmarks regenerating the paper's evaluation artifacts, one target per
// table and figure (see DESIGN.md's per-experiment index), plus ablations
// for the design choices Section III calls out: buffer size, compression
// codec, constraint solving, interval-tree coalescing, and offline
// parallelism. Run with:
//
//	go test -bench=. -benchmem
package sword_test

import (
	"fmt"
	"testing"

	"sword"
	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/harness"
	"sword/internal/itree"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

func mustWorkload(b *testing.B, name string) workloads.Workload {
	b.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func runOnce(b *testing.B, name string, tool harness.Tool, opts harness.Options) harness.Result {
	b.Helper()
	res, err := harness.Run(mustWorkload(b, name), tool, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1HBMasking regenerates Figure 1: the two-schedule litmus
// under archer and sword.
func BenchmarkFig1HBMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.ExpFig1()
		if len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkTab1MetaCollection regenerates Table I's meta-data file.
func BenchmarkTab1MetaCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.ExpTab1()
	}
}

// BenchmarkFig2NestedRaces regenerates Figure 2's nested-region races.
func BenchmarkFig2NestedRaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.ExpFig2()
	}
}

// BenchmarkDRBSuite runs the full DataRaceBench matrix (§IV-A): every drb
// kernel under sword.
func BenchmarkDRBSuite(b *testing.B) {
	suite := workloads.BySuite("drb")
	races := 0
	for i := 0; i < b.N; i++ {
		races = 0
		for _, w := range suite {
			res, err := harness.Run(w, harness.Sword, harness.Options{Threads: 4, NodeBudget: -1})
			if err != nil {
				b.Fatal(err)
			}
			races += res.Races
		}
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkTable2OmpSCR runs the Table II detection per tool over the
// OmpSCR suite.
func BenchmarkTable2OmpSCR(b *testing.B) {
	suite := workloads.BySuite("ompscr")
	for _, tool := range []harness.Tool{harness.Archer, harness.Sword} {
		b.Run(tool.String(), func(b *testing.B) {
			races := 0
			for i := 0; i < b.N; i++ {
				races = 0
				for _, w := range suite {
					res, err := harness.Run(w, tool, harness.Options{Threads: 4, NodeBudget: -1})
					if err != nil {
						b.Fatal(err)
					}
					races += res.Races
				}
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkFig6Overheads measures the dynamic-phase cost each tool adds on
// a representative OmpSCR kernel (c_md), the quantity Figure 6 geomeans.
func BenchmarkFig6Overheads(b *testing.B) {
	for _, tool := range harness.Tools {
		b.Run(tool.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, "c_md", tool, harness.Options{Threads: 4, NodeBudget: -1, SkipOffline: true})
			}
		})
	}
}

// BenchmarkTable3Offline measures sword's offline phase on the OmpSCR
// kernel with the largest trace, single-worker (OA) vs parallel (MT).
func BenchmarkTable3Offline(b *testing.B) {
	w := mustWorkload(b, "c_fft")
	store := trace.NewMemStore()
	res, err := harness.Run(w, harness.Sword, harness.Options{Threads: 4, NodeBudget: -1, Store: store, SkipOffline: true})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	for _, workers := range []int{1, 0} {
		name := "MT"
		if workers == 1 {
			name = "OA"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.New(store, core.Config{Workers: workers}).Analyze(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4HPC runs each HPC benchmark under sword end to end — the
// detection column of Table IV.
func BenchmarkTable4HPC(b *testing.B) {
	for _, row := range harness.HPCBenchmarks()[:4] {
		b.Run(row.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runOnce(b, row.Name, harness.Sword, harness.Options{Threads: 4, Size: row.Size})
				if res.OOM {
					b.Fatal("unexpected OOM")
				}
			}
		})
	}
}

// BenchmarkFig7Threads sweeps thread counts on the AMG analogue under
// sword's dynamic phase — Figure 7's scaling axis.
func BenchmarkFig7Threads(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("t%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, "amg", harness.Sword, harness.Options{Threads: threads, Size: 10, NodeBudget: -1, SkipOffline: true})
			}
		})
	}
}

// BenchmarkFig7LULESH measures sword's worst case: very many small
// regions, dominating log collection (Figure 7c).
func BenchmarkFig7LULESH(b *testing.B) {
	for _, tool := range []harness.Tool{harness.Archer, harness.Sword} {
		b.Run(tool.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, "lulesh", tool, harness.Options{Threads: 4, Size: 60, NodeBudget: -1, SkipOffline: true})
			}
		})
	}
}

// BenchmarkFig8AMGSizes sweeps the AMG input size under sword — the
// bounded-memory axis of Figure 8.
func BenchmarkFig8AMGSizes(b *testing.B) {
	for _, size := range []int{10, 20, 30} {
		b.Run(fmt.Sprintf("%dcubed", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, "amg", harness.Sword, harness.Options{Threads: 4, Size: size, NodeBudget: -1, SkipOffline: true})
			}
		})
	}
}

// BenchmarkTable5EndToEnd measures sword's full pipeline (collection plus
// offline analysis) on HPCCG — a Table V column.
func BenchmarkTable5EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runOnce(b, "hpccg", harness.Sword, harness.Options{Threads: 4, NodeBudget: -1})
		if res.Races != 1 {
			b.Fatalf("races = %d", res.Races)
		}
	}
}

// --- Ablations (DESIGN.md E-ABL) ---

// benchCollect runs a fixed access pattern through the collector with the
// given configuration and reports the trace volume.
func benchCollect(b *testing.B, cfg rt.Config) {
	b.Helper()
	pc := pcreg.Site("bench:ablation")
	b.ReportAllocs()
	var raw, comp uint64
	for i := 0; i < b.N; i++ {
		store := trace.NewMemStore()
		col := rt.New(store, cfg)
		rtm := omp.New(omp.WithTool(col))
		space := memsim.NewSpace(nil)
		arr, _ := space.AllocF64(1 << 14)
		rtm.Parallel(4, func(th *omp.Thread) {
			for rep := 0; rep < 8; rep++ {
				th.For(0, 1<<14, func(j int) {
					th.StoreF64(arr, j, 1, pc)
				})
			}
		})
		if err := col.Close(); err != nil {
			b.Fatal(err)
		}
		st := col.Stats()
		raw, comp = st.RawBytes, st.CompressedBytes
	}
	if comp > 0 {
		b.ReportMetric(float64(raw)/float64(comp), "ratio")
	}
}

// BenchmarkAblationBufferSize sweeps the per-thread buffer bound (the
// paper's 25,000-event sweet spot).
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, events := range []int{1000, 5000, 25000, 100000} {
		b.Run(fmt.Sprintf("events%d", events), func(b *testing.B) {
			benchCollect(b, rt.Config{MaxEvents: events})
		})
	}
}

// BenchmarkAblationCodec compares the flush codecs (the paper's
// LZO/Snappy/LZ4 bake-off).
func BenchmarkAblationCodec(b *testing.B) {
	for _, codec := range []compress.Codec{compress.Raw{}, compress.LZSS{}, compress.NewFlate()} {
		b.Run(codec.Name(), func(b *testing.B) {
			benchCollect(b, rt.Config{Codec: codec})
		})
	}
}

// BenchmarkAblationSolver compares the exact strided-interval solver
// against the bounding-box approximation on a strided workload.
func BenchmarkAblationSolver(b *testing.B) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocI32(1 << 14)
	pc0, pc1 := pcreg.Site("ablation:lane0"), pcreg.Site("ablation:lane1")
	rtm.Parallel(2, func(th *omp.Thread) {
		pc := pc0
		if th.ID() == 1 {
			pc = pc1
		}
		for j := th.ID(); j < 1<<14; j += 2 {
			th.StoreI32(arr, j, 1, pc)
		}
	})
	if err := col.Close(); err != nil {
		b.Fatal(err)
	}
	for _, noSolver := range []bool{false, true} {
		name := "exact"
		if noSolver {
			name = "bbox"
		}
		b.Run(name, func(b *testing.B) {
			races := 0
			for i := 0; i < b.N; i++ {
				rep, err := core.New(store, core.Config{NoSolver: noSolver}).Analyze()
				if err != nil {
					b.Fatal(err)
				}
				races = rep.Len()
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkAblationOfflineWorkers sweeps offline analysis parallelism on a
// multi-region trace.
func BenchmarkAblationOfflineWorkers(b *testing.B) {
	store := trace.NewMemStore()
	_, err := harness.Run(mustWorkload(b, "lulesh"), harness.Sword,
		harness.Options{Threads: 4, Size: 90, NodeBudget: -1, Store: store, SkipOffline: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.New(store, core.Config{Workers: workers}).Analyze(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectorHotPath measures the per-access cost of the dynamic
// phase in isolation — the number the paper's bounded-overhead claim
// rides on.
func BenchmarkCollectorHotPath(b *testing.B) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(4096)
	pc := pcreg.Site("bench:hotpath")
	b.ReportAllocs()
	rtm.Parallel(1, func(th *omp.Thread) {
		for i := 0; i < b.N; i++ {
			th.StoreF64(arr, i&4095, 1, pc)
		}
	})
	b.StopTimer()
	col.Close()
}

// BenchmarkCollectorContended measures the multi-threaded collection hot
// path: 8 goroutines appending to distinct slots with frequent buffer
// fills, so both the slot lookup and the flush pipeline are under
// contention — the scenario the lock-free slot table and the parallel
// flusher exist for. Reported as events/s (higher is better).
func BenchmarkCollectorContended(b *testing.B) {
	const threads = 8
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{MaxEvents: 4096})
	rtm := omp.New(omp.WithTool(col))
	pc := pcreg.Site("bench:contended")
	b.ReportAllocs()
	b.ResetTimer()
	rtm.Parallel(threads, func(th *omp.Thread) {
		base := 0x100000 + uint64(th.ID())<<24
		for i := 0; i < b.N; i++ {
			th.Write(base+uint64(i&4095)*8, 8, pc)
		}
	})
	b.StopTimer()
	if err := col.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(threads*b.N)/b.Elapsed().Seconds(), "events/s")
}

// --- Analyzer-phase family: the comparison-engine overhaul's numbers ---

// BenchmarkAnalyzerTreeBuild measures interval-tree construction in
// isolation: strided inserts from four interleaved lanes plus compaction,
// the exact input shape pair enumeration receives.
func BenchmarkAnalyzerTreeBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var t itree.Tree
		for th := 0; th < 4; th++ {
			acc := itree.Access{Width: 8, Write: th%2 == 0, PC: uint64(100 + th)}
			for k := 0; k < 2048; k++ {
				acc.Addr = 0x10000 + uint64(th)*8 + uint64(k)*32
				t.Insert(acc)
			}
		}
		t.Compact()
	}
}

// analyzerStridedStore collects the strided DRB-style trace the
// pair-comparison benchmarks analyze: interleaved disjoint strides (heavy
// negative solver traffic), barrier rounds repeating the same shapes (memo
// fodder), and one racy site re-confirmed every round (suppression fodder).
func analyzerStridedStore(b *testing.B) trace.Store {
	b.Helper()
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	rtm.Parallel(4, func(th *omp.Thread) {
		pc := pcreg.Site(fmt.Sprintf("analyzer:lane%d", th.ID()))
		tail := pcreg.Site("analyzer:tail")
		for round := 0; round < 8; round++ {
			for i := th.ID(); i < 2048; i += 4 {
				th.Write(0x200000+uint64(i)*8, 8, pc)
			}
			th.Write(0x200000+uint64(round)*8, 8, tail)
			th.Barrier()
		}
	})
	if err := col.Close(); err != nil {
		b.Fatal(err)
	}
	return store
}

// BenchmarkAnalyzerPairComparison measures the pair-comparison phase on a
// strided workload under both engines: the merge sweep with memo and
// suppression against the legacy tree-probing engine. The sweep leg reports
// the solver-effort split — requested decisions versus actual solves.
func BenchmarkAnalyzerPairComparison(b *testing.B) {
	store := analyzerStridedStore(b)
	b.Run("sweep", func(b *testing.B) {
		var st *sword.RunStats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = sword.AnalyzeStore(store)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Analysis.SolverCalls), "solver_calls")
		b.ReportMetric(float64(st.SolverCacheHits), "solver_cache_hits")
		b.ReportMetric(float64(st.SitesSuppressed), "sites_suppressed")
	})
	b.Run("probe", func(b *testing.B) {
		var calls uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := core.New(store, core.Config{ProbeEngine: true}).Analyze()
			if err != nil {
				b.Fatal(err)
			}
			calls = rep.Stats.SolverCalls
		}
		b.ReportMetric(float64(calls), "solver_calls")
	})
}

// BenchmarkAnalyzerEndToEnd measures full sword runs — collection plus
// both offline legs — on representative DRB and OmpSCR workloads.
func BenchmarkAnalyzerEndToEnd(b *testing.B) {
	for _, name := range []string{"antidep1-orig-yes", "nowait-orig-yes", "c_jacobi", "c_md"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, name, harness.Sword, harness.Options{Threads: 4, NodeBudget: -1})
			}
		})
	}
}

// BenchmarkAblationCompact compares offline analysis with and without the
// interval-tree compaction pass on a fragmentation-heavy trace
// (descending sweeps defeat insert-time coalescing).
func BenchmarkAblationCompact(b *testing.B) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(1 << 13)
	pc := pcreg.Site("ablation:descending")
	rtm.Parallel(4, func(th *omp.Thread) {
		th.For(0, 1<<13, func(i int) {
			j := (1 << 13) - 1 - i // descending order per chunk
			th.StoreF64(arr, j, 1, pc)
		})
	})
	if err := col.Close(); err != nil {
		b.Fatal(err)
	}
	for _, noCompact := range []bool{false, true} {
		name := "compact"
		if noCompact {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				rep, err := core.New(store, core.Config{NoCompact: noCompact}).Analyze()
				if err != nil {
					b.Fatal(err)
				}
				nodes = rep.Stats.TreeNodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}
