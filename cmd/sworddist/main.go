// Command sworddist runs SWORD's offline analysis as a distributed
// service — the paper's cluster mode (§V), where pairs of concurrent
// barrier intervals are analyzed across many nodes, here reproduced as a
// coordinator/worker protocol over TCP (see internal/dist and
// docs/FORMAT.md, "Distributed analysis").
//
// One process serves the plan; any number of workers join it. Every
// process needs read access to the same trace directory (a shared
// filesystem in the paper's setting):
//
//	sworddist -logdir /shared/trace -serve :7077       # coordinator
//	sworddist -logdir /shared/trace -join host:7077    # worker (repeat per node)
//	sworddist -logdir /tmp/trace -local 4              # both, in one process
//
// The coordinator prints the merged race report and exits like
// swordoffline: 0 = no races, 3 = races found, 1 = analysis failed,
// 2 = usage. A worker exits 0 after a clean drain (the coordinator sent
// shutdown) and 1 on any error. Analysis ablations (-nosolver,
// -nocompact, -all-races) must be passed identically to the coordinator
// and every worker: the coordinator plans with them, workers analyze
// with them, and a mismatch changes what a batch reports.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sword"
	"sword/internal/core"
	"sword/internal/dist"
	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/trace"
)

func main() {
	logdir := flag.String("logdir", "", "directory containing sword_*.log / sword_*.meta files (shared by all processes)")
	serve := flag.String("serve", "", "run the coordinator, listening on this address (e.g. :7077)")
	join := flag.String("join", "", "run a worker, connecting to the coordinator at this address")
	local := flag.Int("local", 0, "run a coordinator plus N loopback workers in this process")
	workers := flag.Int("workers", 0, "per-worker analysis parallelism (<= 0 = GOMAXPROCS)")
	name := flag.String("name", "", "worker name shown in the coordinator's notes (default: the hostname)")
	batchUnits := flag.Int("batch-units", 0, "pair units per batch (0 = adaptive from the plan's byte volume)")
	prefetch := flag.Int("prefetch", 0, "batches kept queued per worker beyond the active one (0 = 1, negative disables)")
	wireCodec := flag.String("wire-codec", "", "frame compressor negotiated with peers: lzss (default), flate, raw")
	residentBudget := flag.Int64("resident-budget", 0, "bytes of trace whose trees a worker keeps resident across batches (0 = 256 MiB, negative disables)")
	inlineBelow := flag.Int64("inline-below", 0, "-local only: analyze in-process below this plan volume (0 = 256 KiB, negative = never)")
	workerTimeout := flag.Duration("worker-timeout", 0, "drop a worker silent for this long (0 = 10s)")
	batchTimeout := flag.Duration("batch-timeout", 0, "per-batch deadline, heartbeats or not (0 = 2m)")
	maxAttempts := flag.Int("max-attempts", 0, "dispatches per unit before the run fails (0 = 5)")
	dialRetries := flag.Int("dial-retries", 0, "-join only: re-attempt the coordinator connection this many times (0 = dial once)")
	dialBackoff := flag.Duration("dial-backoff", 0, "-join only: base jittered delay between connection attempts (0 = 250ms)")
	noSolver := flag.Bool("nosolver", false, "disable the strided-interval constraint solver (ablation)")
	noCompact := flag.Bool("nocompact", false, "disable interval-tree compaction (ablation)")
	allRaces := flag.Bool("all-races", false, "disable race-site suppression so per-race counts are exact")
	metricsOut := flag.String("metrics-out", "", "write the dist.* metrics snapshot to this file (.csv for CSV, else JSON)")
	quiet := flag.Bool("q", false, "print only the summary line")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*serve != "", *join != "", *local > 0} {
		if on {
			modes++
		}
	}
	if *logdir == "" || modes != 1 {
		fmt.Fprintln(os.Stderr, "sworddist: -logdir plus exactly one of -serve, -join, -local is required")
		flag.Usage()
		os.Exit(2)
	}
	// Opening a store would silently create a missing directory and then
	// "analyze" an empty trace; a typo'd path must be an error instead.
	if fi, err := os.Stat(*logdir); err != nil {
		fmt.Fprintln(os.Stderr, "sworddist:", err)
		os.Exit(1)
	} else if !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "sworddist: %s is not a directory\n", *logdir)
		os.Exit(1)
	}
	store, err := trace.NewDirStore(*logdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sworddist:", err)
		os.Exit(1)
	}
	defer store.Close()

	m := obs.New()
	ccfg := core.Config{
		Workers:   *workers,
		NoSolver:  *noSolver,
		NoCompact: *noCompact,
		AllRaces:  *allRaces,
		Obs:       m,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []dist.Option{
		dist.WithCore(ccfg),
		dist.WithObs(m),
		dist.WithBatchUnits(*batchUnits),
		dist.WithWorkerTimeout(*workerTimeout),
		dist.WithBatchTimeout(*batchTimeout),
		dist.WithMaxAttempts(*maxAttempts),
		dist.WithPrefetch(*prefetch),
		dist.WithResidentBudget(*residentBudget),
		dist.WithInlineBelow(*inlineBelow),
		dist.WithDialRetries(*dialRetries),
		dist.WithDialBackoff(*dialBackoff),
	}
	if *wireCodec != "" {
		opts = append(opts, dist.WithWireCodec(*wireCodec))
	}
	var rep *report.Report
	start := time.Now()
	switch {
	case *join != "":
		wname := *name
		if wname == "" {
			wname, _ = os.Hostname()
		}
		err = dist.Work(ctx, *join, store, append(opts, dist.WithName(wname))...)
		if err == nil {
			fmt.Printf("worker drained: %d units in %d batches in %v\n",
				m.Snapshot().Value("dist.worker_units_done"),
				m.Snapshot().Value("dist.worker_batches_done"), time.Since(start))
		}
	case *serve != "":
		rep, err = runCoordinator(ctx, store, *serve, opts)
	default:
		rep, err = dist.Local(ctx, store, *local, opts...)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sworddist: interrupted")
		} else {
			fmt.Fprintln(os.Stderr, "sworddist:", err)
		}
		os.Exit(1)
	}
	if *metricsOut != "" {
		if werr := sword.WriteMetrics(*metricsOut, m.Snapshot()); werr != nil {
			fmt.Fprintln(os.Stderr, "sworddist:", werr)
			os.Exit(1)
		}
		fmt.Println("metrics written to", *metricsOut)
	}
	if rep == nil {
		return // worker mode: no report of its own
	}
	if !*quiet {
		fmt.Print(rep.String())
	}
	snap := m.Snapshot()
	fmt.Printf("analyzed %d regions, %d intervals, %d pair units across %d worker connection(s) in %v\n",
		rep.Stats.Regions, rep.Stats.Intervals,
		snap.Value("dist.units_done"), snap.Value("dist.workers_connected"), time.Since(start))
	if rep.Len() > 0 {
		os.Exit(3)
	}
}

// runCoordinator serves the plan on addr until it drains, honoring ctx:
// an interrupt closes the listener and fails the wait instead of leaving
// the process hanging with workers mid-batch.
func runCoordinator(ctx context.Context, store trace.Store, addr string, opts []dist.Option) (*report.Report, error) {
	coord, err := dist.NewCoordinator(store, opts...)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	fmt.Printf("sworddist: coordinator listening on %s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ln) }()
	done := make(chan struct{})
	var rep *report.Report
	var waitErr error
	go func() {
		rep, waitErr = coord.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		ln.Close()
		return nil, ctx.Err()
	case <-done:
	}
	if waitErr != nil {
		return nil, waitErr
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	return rep, nil
}
