// Command swordbench regenerates the tables and figures of the SWORD
// paper's evaluation section (IPDPS 2018) on the reproduction's simulated
// substrate.
//
// Usage:
//
//	swordbench                 # run every experiment
//	swordbench -exp tab4       # one experiment (fig1, tab1, fig2, drb,
//	                           # tab2, fig6, tab3, tab4, fig7, fig8, tab5)
//	swordbench -threads 2,4,8  # thread counts for the sweep experiments
//	swordbench -repeats 10     # timing repetitions (the paper used 10)
//	swordbench -bench BENCH.json  # micro-benchmark suite (hot paths, codecs)
//	swordbench -dist BENCH.json   # distributed analysis vs single-process
//	swordbench -serve BENCH.json  # analysis-service multi-tenant stress
//	swordbench -filter BENCH.json # static-filter on/off comparison
//	swordbench -stream BENCH.json # streaming-analysis first-race latency
//	swordbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sword"
	"sword/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	threads := flag.String("threads", "2,4,8", "comma-separated thread counts for sweeps")
	repeats := flag.Int("repeats", 3, "timing repetitions per measurement")
	outDir := flag.String("o", "", "also write each experiment's artifact to <dir>/<id>.txt")
	csvDir := flag.String("csv", "", "write the figures' data series as CSV to <dir>/<id>.csv")
	metrics := flag.Bool("metrics", false, "print the aggregated sword metrics of the timing experiments")
	metricsOut := flag.String("metrics-out", "", "write the aggregated metrics snapshot to this file (.csv for CSV, else JSON)")
	bench := flag.String("bench", "", "run the performance micro-benchmark suite and write JSON results to this file (schema in EXPERIMENTS.md)")
	distBench := flag.String("dist", "", "run the distributed-analysis experiment (single-process vs N loopback workers) and write JSON results to this file (schema in EXPERIMENTS.md)")
	serveBench := flag.String("serve", "", "run the analysis-service stress experiment (multi-tenant fairness, torn uploads, heap budget) and write JSON results to this file (schema in EXPERIMENTS.md)")
	filterBench := flag.String("filter", "", "run the static-filter experiment (filter on vs off on the statically chunked workloads) and write JSON results to this file (schema in EXPERIMENTS.md)")
	streamBench := flag.String("stream", "", "run the streaming-analysis experiment (first-race latency and frontier footprint, online vs post-mortem) and write JSON results to this file (schema in EXPERIMENTS.md)")
	chaos := flag.Bool("chaos", false, "run the crash-tolerance chaos experiment (mid-run store failure + salvage analysis)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *chaos {
		fmt.Println("==== chaos ====")
		fmt.Print(harness.ChaosExperiment())
		return
	}

	if *bench != "" {
		if err := harness.WriteMicroBenches(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *bench)
		return
	}

	if *distBench != "" {
		if err := harness.WriteDistBench(*distBench); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *distBench)
		return
	}

	if *serveBench != "" {
		if err := harness.WriteServeBench(*serveBench); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *serveBench)
		return
	}

	if *filterBench != "" {
		if err := harness.WriteStaticFilterBench(*filterBench); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *filterBench)
		return
	}

	if *streamBench != "" {
		if err := harness.WriteStreamBench(*streamBench); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *streamBench)
		return
	}

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var ts []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "swordbench: bad -threads value %q\n", part)
			os.Exit(2)
		}
		ts = append(ts, n)
	}
	cfg := harness.ExpConfig{Threads: ts, Repeats: *repeats}
	if *metrics || *metricsOut != "" {
		cfg.Obs = sword.NewMetrics()
	}
	experiments := harness.Experiments(cfg)

	ids := harness.ExperimentIDs()
	if *exp != "" {
		if _, ok := experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "swordbench: unknown experiment %q (see -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "swordbench:", err)
			os.Exit(1)
		}
		for id, f := range harness.CSVExports(cfg) {
			if *exp != "" && *exp != id {
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(f()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "swordbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	for _, id := range ids {
		out := experiments[id]()
		fmt.Printf("==== %s ====\n", id)
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "swordbench:", err)
				os.Exit(1)
			}
		}
	}
	if cfg.Obs != nil {
		snap := cfg.Obs.Snapshot()
		if *metrics {
			fmt.Println("==== aggregated sword metrics ====")
			for _, m := range snap {
				if m.Kind == "timer" {
					fmt.Printf("%s\t%v\t(%d samples)\n", m.Name, m.Duration(), m.Count)
				} else {
					fmt.Printf("%s\t%d\n", m.Name, m.Value)
				}
			}
		}
		if *metricsOut != "" {
			if err := sword.WriteMetrics(*metricsOut, snap); err != nil {
				fmt.Fprintln(os.Stderr, "swordbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", *metricsOut)
		}
	}
}
