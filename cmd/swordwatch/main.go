// Command swordwatch watches a trace directory that a collector is still
// writing and reports data races while the traced program runs — SWORD's
// live front-end. Point it at the -logdir of a collection started with
// live flushing (swordrun -live-flush, or sword.WithLiveFlush) and it
// prints each race the moment its barrier episode seals, then finishes
// with the same report and summary line swordoffline would print over the
// completed trace.
//
// Usage:
//
//	swordwatch -logdir /tmp/trace              # tail until the run ends
//	swordwatch -logdir /tmp/trace -metrics     # plus the stream.* gauges
//
// Races reported mid-run carry placeholder site names (pc(N)); the
// collector persists its symbol table only when it closes, and the final
// report is fully symbolized. Ctrl-C before the run ends prints the
// partial live report and exits 1 — the crashed-run path.
//
// Exit codes mirror swordoffline: 0 = run finished, no races; 3 = races
// found; 1 = interrupted or failed; 2 = usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sword"
)

func main() {
	logdir := flag.String("logdir", "", "trace directory being written by a live-flush collection")
	workers := flag.Int("workers", 0, "analysis workers (<= 0 = GOMAXPROCS)")
	poll := flag.Duration("poll", 0, "tail poll interval when idle (0 = 2ms)")
	metrics := flag.Bool("metrics", false, "print the stream.* metrics after the run")
	quiet := flag.Bool("q", false, "suppress the live feed; print only the final report")
	flag.Parse()

	if *logdir == "" {
		fmt.Fprintln(os.Stderr, "swordwatch: -logdir is required")
		os.Exit(2)
	}
	if fi, err := os.Stat(*logdir); err != nil {
		fmt.Fprintln(os.Stderr, "swordwatch:", err)
		os.Exit(1)
	} else if !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "swordwatch: %s is not a directory\n", *logdir)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	opts := []sword.Option{
		sword.WithWorkers(*workers),
		sword.WithPollInterval(*poll),
	}
	if !*quiet {
		opts = append(opts, sword.WithOnRace(func(r sword.Race) {
			fmt.Printf("[%8s] %s\n", time.Since(start).Round(time.Millisecond), r)
		}))
	}
	rep, stats, err := sword.AnalyzeLive(ctx, *logdir, opts...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "swordwatch: interrupted before the run ended; partial report:")
			if rep != nil {
				fmt.Print(rep.String())
			}
		} else {
			fmt.Fprintln(os.Stderr, "swordwatch:", err)
		}
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Print(rep.String())
	st := rep.Stats
	fmt.Printf("analyzed %d regions, %d intervals, %d concurrent pairs, %d tree nodes (%d accesses) in %v\n",
		st.Regions, st.Intervals, st.IntervalPairs, st.TreeNodes, st.Accesses, elapsed)
	if *metrics {
		snap := stats.Metrics
		fmt.Println("--- online analysis ---")
		fmt.Printf("rounds:              %d\n", snap.Value("stream.rounds"))
		fmt.Printf("analysis steps:      %d\n", snap.Value("stream.steps"))
		fmt.Printf("epochs sealed live:  %d\n", snap.Value("stream.epochs_sealed"))
		fmt.Printf("races found live:    %d\n", snap.Value("stream.races_live"))
		fmt.Printf("tail retries:        %d\n", snap.Value("stream.tail_retries"))
		fmt.Printf("committed bytes:     %d\n", snap.Value("stream.committed_bytes"))
		fmt.Printf("frontier peak:       %d bytes\n", snap.Value("stream.frontier_bytes_peak"))
	}
	if rep.Len() > 0 {
		os.Exit(3)
	}
}
