// Command swordrun executes one bundled workload under a chosen race
// detector and prints the race report and measurements.
//
// Usage:
//
//	swordrun -list                          # list workloads
//	swordrun -suite ompscr                  # detection matrix for a suite
//	swordrun -w amg -tool sword             # analyze with SWORD
//	swordrun -w amg -size 40 -tool archer   # the paper's OOM case
//	swordrun -w c_md -tool sword -logdir /tmp/trace   # keep the trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sword"
	"sword/internal/harness"
	"sword/internal/trace"
	"sword/internal/workloads"
)

func main() {
	name := flag.String("w", "", "workload name (see -list)")
	suite := flag.String("suite", "", "run every workload of a suite (drb, ompscr, hpc) and print the detection matrix")
	toolName := flag.String("tool", "sword", "tool: baseline, archer, archer-low, sword")
	threads := flag.Int("threads", 0, "team size (default: GOMAXPROCS clamped to [4,8])")
	size := flag.Int("size", 0, "problem size (default: workload default)")
	budget := flag.Int64("budget", 0, "node memory budget in bytes (0 = default, <0 = unlimited)")
	logdir := flag.String("logdir", "", "directory for sword trace files (default: in-memory)")
	flushWorkers := flag.Int("flush-workers", 0, "sword flush pipeline workers (0 = min(GOMAXPROCS, 4))")
	batch := flag.Int("batch", 0, "sword offline analysis: N top-level subtrees per batch (0 = one pass)")
	salvage := flag.Bool("salvage", false, "sword offline analysis: graceful-degradation mode for damaged traces")
	staticFilter := flag.Bool("static-filter", false, "sword collection: drop accesses covered by static loop certificates (identical race set)")
	liveFlush := flag.Bool("live-flush", false, "sword collection: commit log data before each meta record so a live analyzer (swordwatch) can tail the trace")
	list := flag.Bool("list", false, "list workloads and exit")
	verbose := flag.Bool("v", false, "print per-race details")
	asJSON := flag.Bool("json", false, "emit the race report as JSON")
	metrics := flag.Bool("metrics", false, "print sword's observability metrics (per-phase timings and counters)")
	metricsOut := flag.String("metrics-out", "", "write sword's metrics snapshot to this file (.csv for CSV, else JSON)")
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "name\tsuite\tdocumented\tdescription")
		for _, wl := range workloads.All() {
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\n", wl.Name, wl.Suite, wl.Documented, wl.Description)
		}
		w.Flush()
		return
	}
	if *suite != "" {
		ws := workloads.BySuite(*suite)
		if len(ws) == 0 {
			fmt.Fprintf(os.Stderr, "swordrun: unknown suite %q\n", *suite)
			os.Exit(2)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "benchmark\tdocumented\tarcher\tarcher-low\tsword")
		for _, wl := range ws {
			row := make([]string, 0, 3)
			for _, tool := range []harness.Tool{harness.Archer, harness.ArcherLow, harness.Sword} {
				res, err := harness.Run(wl, tool, harness.Options{Threads: *threads, Size: *size, NodeBudget: *budget})
				if err != nil {
					fmt.Fprintln(os.Stderr, "swordrun:", err)
					os.Exit(1)
				}
				if res.OOM {
					row = append(row, "OOM")
				} else {
					row = append(row, fmt.Sprint(res.Races))
				}
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\n", wl.Name, wl.Documented, row[0], row[1], row[2])
		}
		w.Flush()
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "swordrun: -w or -suite is required (see -list)")
		os.Exit(2)
	}
	wl, err := workloads.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swordrun:", err)
		os.Exit(2)
	}
	var tool harness.Tool
	switch *toolName {
	case "baseline":
		tool = harness.Baseline
	case "archer":
		tool = harness.Archer
	case "archer-low":
		tool = harness.ArcherLow
	case "sword":
		tool = harness.Sword
	default:
		fmt.Fprintf(os.Stderr, "swordrun: unknown tool %q\n", *toolName)
		os.Exit(2)
	}
	opts := harness.Options{
		Threads: *threads, Size: *size, NodeBudget: *budget,
		FlushWorkers: *flushWorkers, SubtreeBatch: *batch, Salvage: *salvage,
		StaticFilter: *staticFilter, LiveFlush: *liveFlush,
	}
	if *logdir != "" {
		store, err := trace.NewDirStore(*logdir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swordrun:", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	var reg *sword.Metrics
	if *metrics || *metricsOut != "" {
		reg = sword.NewMetrics()
		opts.Obs = reg
	}
	res, err := harness.Run(wl, tool, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swordrun:", err)
		os.Exit(1)
	}
	if res.OOM {
		fmt.Printf("%s under %s: OUT OF MEMORY (footprint %d + overhead %d exceeds node budget)\n",
			wl.Name, tool, res.Footprint, res.MemOverhead)
		os.Exit(1)
	}
	if *asJSON && res.Report != nil {
		data, err := json.MarshalIndent(res.Report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "swordrun:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		if res.Races > 0 {
			os.Exit(3)
		}
		return
	}
	fmt.Printf("%s under %s: %d race(s), %d threads, size %d\n",
		wl.Name, tool, res.Races, res.Threads, res.Size)
	if *verbose && res.Report != nil {
		fmt.Print(res.Report.String())
	}
	fmt.Printf("dynamic time: %v\n", res.DynTime)
	if tool == harness.Sword {
		fmt.Printf("offline time: %v (1 worker), %v (parallel)\n", res.OfflineOA, res.OfflineMT)
		fmt.Printf("trace: %d events, %d flushes, %d fragments, %d log bytes\n",
			res.Collector.Events, res.Collector.Flushes, res.Collector.Fragments, res.LogBytes)
		if res.Collector.EventsFiltered > 0 {
			fmt.Printf("static filter: %d accesses dropped at collection, %d pair classes retired\n",
				res.Collector.EventsFiltered, res.Analysis.PairsRetiredStatic)
		}
	}
	if tool == harness.Archer || tool == harness.ArcherLow {
		fmt.Printf("shadow: %d words, %d evictions, %d checks\n",
			res.Shadow.ShadowWords, res.Shadow.Evictions, res.Shadow.Checks)
	}
	fmt.Printf("memory: footprint %d bytes, tool overhead %d bytes\n", res.Footprint, res.MemOverhead)
	if tool == harness.Sword && res.RunStats != nil {
		if *metrics {
			st := res.RunStats
			fmt.Printf("phases: structure %v, trees %v, compare %v (offline total %v)\n",
				st.Structure, st.TreeBuild, st.Compare, st.AnalyzeTotal)
			fmt.Printf("counters: %d interval pairs, %d node comparisons, %d solver calls, %d compressed bytes\n",
				st.Analysis.IntervalPairs, st.Analysis.NodeComparisons,
				st.Analysis.SolverCalls, st.Collect.CompressedBytes)
			if st.BlocksSkipped > 0 {
				fmt.Printf("batched streaming: %d blocks skipped (%d compressed bytes not decoded)\n",
					st.BlocksSkipped, st.SkippedBytes)
			}
		}
		if *metricsOut != "" {
			if err := sword.WriteMetrics(*metricsOut, res.RunStats.Metrics); err != nil {
				fmt.Fprintln(os.Stderr, "swordrun:", err)
				os.Exit(1)
			}
			fmt.Println("metrics written to", *metricsOut)
		}
	}
	if res.Races > 0 {
		os.Exit(3) // races found: nonzero exit, like real race checkers
	}
}
