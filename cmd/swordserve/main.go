// Command swordserve runs SWORD's always-on analysis service: an HTTP
// server that ingests trace uploads from many concurrent client runs,
// queues one bounded-memory analysis job per upload under multi-tenant
// fairness, and serves reports — the production deployment shape of the
// paper's offline phase.
//
// Usage:
//
//	swordserve -listen :7080 -datadir /var/lib/sword
//	curl -F sword_0.log=@sword_0.log -F sword_0.meta=@sword_0.meta \
//	     http://host:7080/api/v1/jobs
//	curl http://host:7080/api/v1/jobs/<id>
//	curl http://host:7080/api/v1/jobs/<id>/report
//
// Overloaded tenants are shed with 429 + Retry-After; damaged uploads
// degrade to salvage-mode analysis and partial reports; SIGTERM drains
// cleanly (admission stops, running jobs requeue and persist). See
// docs/FORMAT.md ("HTTP analysis service") for the full API.
//
// Exit codes: 0 = clean shutdown after drain, 1 = serve or drain
// failure, 2 = usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sword/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7080", "address to serve the HTTP API on")
	datadir := flag.String("datadir", "", "persistence root for jobs, traces, and reports (required)")
	globalBytes := flag.Int64("global-bytes", 0, "total stored upload bytes across live jobs (0 = 4 GiB)")
	tenantBytes := flag.Int64("tenant-bytes", 0, "per-tenant stored upload bytes (0 = a quarter of -global-bytes)")
	tenantJobs := flag.Int("tenant-jobs", 0, "per-tenant live jobs (0 = 256)")
	concurrency := flag.Int("concurrency", 0, "jobs analyzed at once (0 = 2)")
	jobMem := flag.Int64("job-mem-budget", 0, "per-job analyzer memory budget in bytes of trace volume (0 = 256 MiB)")
	memBudget := flag.Int64("mem-budget", 0, "server-wide heap budget; over it the largest job retries smaller (0 = off)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt deadline (0 = 10m)")
	maxAttempts := flag.Int("max-attempts", 0, "runs per job before failing loud (0 = 3)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base exponential requeue delay (0 = 500ms)")
	quantum := flag.Int64("quantum", 0, "round-robin fairness byte quantum (0 = 64 KiB)")
	uploadTimeout := flag.Duration("upload-timeout", 0, "idle deadline before an abandoned upload session is reaped (0 = 5m)")
	jobTTL := flag.Duration("job-ttl", 0, "retention of finished jobs and their reports (0 = 24h)")
	workers := flag.Int("workers", 0, "per-job analysis parallelism (0 = GOMAXPROCS)")
	grace := flag.Duration("grace", 30*time.Second, "drain grace period on SIGTERM")
	flag.Parse()

	if *datadir == "" {
		fmt.Fprintln(os.Stderr, "swordserve: -datadir is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := server.New(
		server.WithDataDir(*datadir),
		server.WithGlobalBytes(*globalBytes),
		server.WithTenantBytes(*tenantBytes),
		server.WithTenantJobs(*tenantJobs),
		server.WithConcurrency(*concurrency),
		server.WithJobMemBudget(*jobMem),
		server.WithMemBudget(*memBudget),
		server.WithJobTimeout(*jobTimeout),
		server.WithMaxAttempts(*maxAttempts),
		server.WithRetryBackoff(*retryBackoff),
		server.WithQuantum(*quantum),
		server.WithUploadTimeout(*uploadTimeout),
		server.WithJobTTL(*jobTTL),
		server.WithWorkers(*workers),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swordserve:", err)
		os.Exit(1)
	}
	// Bind before announcing so the printed address is live — smoke
	// scripts poll for this line.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swordserve:", err)
		os.Exit(1)
	}
	fmt.Printf("swordserve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hsrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "swordserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Println("swordserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "swordserve: drain:", err)
		os.Exit(1)
	}
	if err := hsrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "swordserve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("swordserve: drained")
}
