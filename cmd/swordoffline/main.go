// Command swordoffline runs SWORD's offline data-race analysis over an
// existing trace directory — the second, decoupled half of the pipeline,
// typically executed after a production run collected its logs (possibly
// on a different machine, as the paper distributes it across a cluster).
//
// Usage:
//
//	swordoffline -logdir /tmp/trace            # analyze a collected trace
//	swordoffline -logdir /tmp/trace -workers 1 # single-worker (paper's OA)
//	swordoffline -logdir /tmp/trace -batch 4   # bounded-memory streaming
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sword/internal/core"
	"sword/internal/trace"
)

func main() {
	logdir := flag.String("logdir", "", "directory containing sword_*.log / sword_*.meta files")
	workers := flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 0, "bound memory by analyzing N top-level region subtrees at a time (0 = all at once)")
	noSolver := flag.Bool("nosolver", false, "disable the strided-interval constraint solver (ablation)")
	check := flag.Bool("check", false, "validate trace integrity before analyzing")
	quiet := flag.Bool("q", false, "print only the summary line")
	flag.Parse()

	if *logdir == "" {
		fmt.Fprintln(os.Stderr, "swordoffline: -logdir is required")
		os.Exit(2)
	}
	store, err := trace.NewDirStore(*logdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swordoffline:", err)
		os.Exit(1)
	}
	if *check {
		if err := trace.Validate(store); err != nil {
			fmt.Fprintln(os.Stderr, "swordoffline: trace integrity:", err)
			os.Exit(1)
		}
		fmt.Println("trace integrity: ok")
	}
	start := time.Now()
	rep, err := core.New(store, core.Config{Workers: *workers, NoSolver: *noSolver, SubtreeBatch: *batch}).Analyze()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swordoffline:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if !*quiet {
		fmt.Print(rep.String())
	}
	st := rep.Stats
	fmt.Printf("analyzed %d regions, %d intervals, %d concurrent pairs, %d tree nodes (%d accesses) in %v\n",
		st.Regions, st.Intervals, st.IntervalPairs, st.TreeNodes, st.Accesses, elapsed)
	if rep.Len() > 0 {
		os.Exit(3)
	}
}
