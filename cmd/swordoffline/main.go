// Command swordoffline runs SWORD's offline data-race analysis over an
// existing trace directory — the second, decoupled half of the pipeline,
// typically executed after a production run collected its logs (possibly
// on a different machine, as the paper distributes it across a cluster).
//
// Usage:
//
//	swordoffline -logdir /tmp/trace            # analyze a collected trace
//	swordoffline -logdir /tmp/trace -workers 1 # single-worker (paper's OA)
//	swordoffline -logdir /tmp/trace -batch 4   # bounded-memory streaming
//	swordoffline -logdir /tmp/trace -metrics   # per-phase timing breakdown
//	swordoffline -logdir /tmp/trace -metrics-out m.json  # export snapshot
//	swordoffline -logdir /tmp/trace -salvage   # analyze a damaged trace
//	swordoffline -logdir /tmp/trace -follow    # tail a still-running collection
//
// Exit codes: 0 = clean trace, no races; 3 = races found; 4 = partial
// trace (salvage mode recovered a damaged trace), no races in what
// survived; 5 = partial trace with races; 1 = analysis failed; 2 = usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sword"
)

func main() {
	logdir := flag.String("logdir", "", "directory containing sword_*.log / sword_*.meta files")
	workers := flag.Int("workers", 0, "analysis workers (<= 0 = GOMAXPROCS)")
	batch := flag.Int("batch", 0, "bound memory by analyzing N top-level region subtrees at a time (0 = all at once)")
	memBudget := flag.Int64("mem-budget", 0, "bound memory to this many bytes of trace volume; the subtree batch is derived (0 = unbounded, -batch wins)")
	noSolver := flag.Bool("nosolver", false, "disable the strided-interval constraint solver (ablation)")
	noCompact := flag.Bool("nocompact", false, "disable interval-tree compaction (ablation)")
	allRaces := flag.Bool("all-races", false, "disable race-site suppression: solve every instance of already-confirmed race sites so per-race counts are exact")
	salvage := flag.Bool("salvage", false, "graceful-degradation mode for damaged traces: recover and analyze what survived")
	noPrefilter := flag.Bool("no-prefilter", false, "disable the summary-based pair pre-filter (ablation; identical race set, more comparisons)")
	follow := flag.Bool("follow", false, "online mode: tail a trace a collector is still writing, reporting races as they are detected, until the run ends")
	check := flag.Bool("check", false, "validate trace integrity before analyzing")
	metrics := flag.Bool("metrics", false, "print the observability breakdown: per-phase timings and pipeline counters")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot to this file (.csv for CSV, else JSON)")
	quiet := flag.Bool("q", false, "print only the summary line")
	flag.Parse()

	if *logdir == "" {
		fmt.Fprintln(os.Stderr, "swordoffline: -logdir is required")
		os.Exit(2)
	}
	// Opening a store would silently create a missing directory and then
	// "analyze" an empty trace; a typo'd path must be an error instead.
	if fi, err := os.Stat(*logdir); err != nil {
		fmt.Fprintln(os.Stderr, "swordoffline:", err)
		os.Exit(1)
	} else if !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "swordoffline: %s is not a directory\n", *logdir)
		os.Exit(1)
	}
	if *check {
		if err := sword.ValidateTrace(*logdir); err != nil {
			if !*salvage {
				fmt.Fprintln(os.Stderr, "swordoffline: trace integrity:", err)
				os.Exit(1)
			}
			// Salvage mode exists precisely for traces that fail this check.
			fmt.Fprintln(os.Stderr, "swordoffline: trace integrity:", err, "(continuing in salvage mode)")
		} else {
			fmt.Println("trace integrity: ok")
		}
	}
	// Ctrl-C aborts the analysis between tree-build blocks and pair
	// comparisons instead of leaving a long run unkillable-in-flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	analysisOpts := []sword.Option{
		sword.WithWorkers(*workers),
		sword.WithSubtreeBatch(*batch),
		sword.WithMemoryBudget(*memBudget),
		sword.WithNoSolver(*noSolver),
		sword.WithNoCompact(*noCompact),
		sword.WithAllRaces(*allRaces),
		sword.WithSalvage(*salvage),
		sword.WithNoPrefilter(*noPrefilter),
	}
	var rep *sword.Report
	var stats *sword.RunStats
	var err error
	if *follow {
		if !*quiet {
			analysisOpts = append(analysisOpts, sword.WithOnRace(func(r sword.Race) {
				fmt.Printf("[live] %s\n", r)
			}))
		}
		rep, stats, err = sword.AnalyzeLive(ctx, *logdir, analysisOpts...)
	} else {
		rep, stats, err = sword.AnalyzeContext(ctx, *logdir, analysisOpts...)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "swordoffline: interrupted")
			if rep != nil && !*quiet {
				// Online mode hands back the partial live report on cancel.
				fmt.Print(rep.String())
			}
		} else {
			fmt.Fprintln(os.Stderr, "swordoffline:", err)
		}
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if !*quiet {
		fmt.Print(rep.String())
	}
	st := rep.Stats
	fmt.Printf("analyzed %d regions, %d intervals, %d concurrent pairs, %d tree nodes (%d accesses) in %v\n",
		st.Regions, st.Intervals, st.IntervalPairs, st.TreeNodes, st.Accesses, elapsed)
	if *metrics {
		printMetrics(stats)
	}
	if *metricsOut != "" {
		if err := sword.WriteMetrics(*metricsOut, stats.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "swordoffline:", err)
			os.Exit(1)
		}
		fmt.Println("metrics written to", *metricsOut)
	}
	switch {
	case rep.Stats.Partial() && rep.Len() > 0:
		os.Exit(5)
	case rep.Stats.Partial():
		os.Exit(4)
	case rep.Len() > 0:
		os.Exit(3)
	}
}

// printMetrics renders the RunStats breakdown: where the offline time
// went, how much trace the analysis consumed, and how overlap decisions
// split between the solver and the bounding-box fast path.
func printMetrics(stats *sword.RunStats) {
	snap := stats.Metrics
	fmt.Println("--- offline phases ---")
	fmt.Printf("structure recovery:  %v\n", stats.Structure)
	fmt.Printf("tree construction:   %v\n", stats.TreeBuild)
	fmt.Printf("pair comparison:     %v\n", stats.Compare)
	fmt.Printf("total:               %v\n", stats.AnalyzeTotal)
	fmt.Println("--- trace consumed ---")
	fmt.Printf("events:              %d\n", snap.Value("trace.events"))
	fmt.Printf("blocks (flushes):    %d\n", snap.Value("trace.blocks"))
	fmt.Printf("raw bytes:           %d\n", snap.Value("trace.raw_bytes"))
	fmt.Printf("compressed bytes:    %d\n", snap.Value("trace.compressed_bytes"))
	fmt.Printf("blocks skipped:      %d (batched fast path)\n", snap.Value("trace.blocks_skipped"))
	fmt.Printf("skipped bytes:       %d\n", snap.Value("trace.skipped_bytes"))
	fmt.Println("--- analysis effort ---")
	fmt.Printf("interval pairs:      %d\n", snap.Value("core.interval_pairs"))
	fmt.Printf("pairs prefiltered:   %d\n", snap.Value("core.pairs_prefiltered"))
	fmt.Printf("pairs retired:       %d (static certificates)\n", snap.Value("core.pairs_retired_static"))
	fmt.Printf("node comparisons:    %d\n", snap.Value("core.node_comparisons"))
	fmt.Printf("solver calls:        %d\n", snap.Value("core.solver_calls"))
	fmt.Printf("solver cache hits:   %d\n", snap.Value("core.solver_cache_hits"))
	fmt.Printf("solver cache misses: %d\n", snap.Value("core.solver_cache_misses"))
	fmt.Printf("sites suppressed:    %d\n", snap.Value("core.sites_suppressed"))
	fmt.Printf("bbox fast-paths:     %d\n", snap.Value("core.bbox_fastpath"))
	fmt.Printf("peak resident nodes: %d (%d batches)\n",
		snap.Value("core.tree_nodes_peak"), snap.Value("core.batches"))
}
